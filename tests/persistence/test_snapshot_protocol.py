"""Component-level snapshot round trips and their error surfaces.

Every implementer of the ``Snapshotable`` protocol must (a) round-trip its
complete state through JSON bit-identically and (b) reject snapshots that
are foreign, future-versioned or structurally incompatible — loudly, at
the door, before any state is touched.
"""

import json

import pytest

from repro.core.candidates import CandidateIndex
from repro.core.ranking import RankingBuilder
from repro.core.shift import ShiftDetector
from repro.core.tracker import CorrelationTracker, PairObservation
from repro.core.types import TagPair
from repro.persistence.snapshot import (
    Snapshotable,
    SnapshotCorruptionError,
    SnapshotMismatchError,
    SnapshotVersionError,
    require_compatible,
    require_state,
)
from repro.windows.aggregates import TagFrequencyWindow
from repro.windows.decay import DecayedMaximum, ExponentialDecay
from repro.windows.timeseries import TimeSeries

HOUR = 3600.0


def json_roundtrip(state):
    """Snapshots must survive the actual serialisation they are stored in."""
    return json.loads(json.dumps(state))


def pair(a, b):
    return TagPair(a, b)


class TestEnvelopeHelpers:
    def test_require_state_accepts_matching_envelope(self):
        state = {"kind": "widget", "version": 1, "payload": 3}
        assert require_state(state, "widget", 1) is state

    def test_wrong_kind_is_a_mismatch(self):
        with pytest.raises(SnapshotMismatchError, match="expected a 'widget'"):
            require_state({"kind": "gadget", "version": 1}, "widget", 1)

    def test_future_version_is_a_version_error(self):
        with pytest.raises(SnapshotVersionError, match="version 2"):
            require_state({"kind": "widget", "version": 2}, "widget", 1)

    def test_non_mapping_is_corruption(self):
        with pytest.raises(SnapshotCorruptionError):
            require_state(["not", "a", "dict"], "widget", 1)

    def test_require_compatible_names_every_differing_key(self):
        with pytest.raises(SnapshotMismatchError) as excinfo:
            require_compatible(
                "widget", {"horizon": 10.0, "depth": 4},
                {"kind": "widget", "horizon": 20.0, "depth": 5},
            )
        message = str(excinfo.value)
        assert "horizon" in message and "depth" in message
        assert "20.0" in message and "10.0" in message


class TestTimeSeries:
    def test_roundtrip_preserves_points_and_bound(self):
        series = TimeSeries(maxlen=3)
        for i in range(5):
            series.append(float(i), i * 0.1)
        restored = TimeSeries.from_snapshot(json_roundtrip(series.snapshot()))
        assert list(restored) == list(series)
        assert restored.maxlen == series.maxlen
        # The bound stays live: appending still evicts the oldest point.
        restored.append(10.0, 1.0)
        assert len(restored) == 3

    def test_unbounded_series_roundtrips(self):
        series = TimeSeries(points=[(1.0, 0.5), (2.0, 0.25)])
        restored = TimeSeries.from_snapshot(json_roundtrip(series.snapshot()))
        assert list(restored) == [(1.0, 0.5), (2.0, 0.25)]
        assert restored.maxlen is None


class TestTagFrequencyWindow:
    def test_roundtrip_rebuilds_counts_exactly(self):
        window = TagFrequencyWindow(10 * HOUR)
        window.add_document(0.0, ("a", "b"))
        window.add_document(HOUR, ("a",))
        window.add_document(2 * HOUR, ("b", "c"))
        restored = TagFrequencyWindow(10 * HOUR)
        restored.restore_state(json_roundtrip(window.state_dict()))
        assert restored.snapshot() == window.snapshot()
        assert restored.document_count == window.document_count
        assert restored.latest_timestamp == window.latest_timestamp
        # Eviction arithmetic continues exactly: both windows drop the same
        # documents on the same advance.
        window.advance_to(11 * HOUR)
        restored.advance_to(11 * HOUR)
        assert restored.snapshot() == window.snapshot()

    def test_horizon_mismatch_rejected(self):
        window = TagFrequencyWindow(10.0)
        window.add_document(0.0, ("a",))
        other = TagFrequencyWindow(20.0)
        with pytest.raises(SnapshotMismatchError, match="horizon"):
            other.restore_state(window.state_dict())


class TestDecayedMaximum:
    def test_state_roundtrip_decays_identically(self):
        decay = ExponentialDecay(half_life=100.0)
        maximum = DecayedMaximum(decay)
        maximum.update(10.0, 0.5)
        restored = DecayedMaximum(decay)
        restored.restore_state(*maximum.state())
        assert restored.value_at(210.0) == maximum.value_at(210.0)

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            DecayedMaximum().restore_state(-0.1, None)


class TestCandidateIndex:
    def build(self):
        index = CandidateIndex(min_support=2)
        index.add_many([pair("a", "b"), pair("a", "b"), pair("a", "c"),
                        pair("b", "c"), pair("b", "c"), pair("b", "c")])
        return index

    def test_roundtrip_preserves_postings_and_threshold(self):
        index = self.build()
        restored = CandidateIndex()
        restored.restore(json_roundtrip(index.snapshot()))
        assert sorted(restored.items()) == sorted(index.items())
        assert restored.min_support == 2
        assert restored.candidates(["b"]) == index.candidates(["b"])
        # The two-sided postings structure is intact: removal through one
        # tag's postings keeps the other side consistent.
        restored.remove_many([pair("b", "c")] * 3)
        assert pair("b", "c") not in restored
        assert restored.pairs_for("c") == frozenset({pair("a", "c")})

    def test_restore_replaces_previous_state(self):
        index = self.build()
        restored = CandidateIndex()
        restored.add(pair("x", "y"))
        restored.restore(index.snapshot())
        assert pair("x", "y") not in restored
        assert len(restored) == len(index)

    def test_foreign_snapshot_rejected(self):
        with pytest.raises(SnapshotMismatchError):
            CandidateIndex().restore({"kind": "timeseries", "version": 1})


class TestCorrelationTracker:
    def build(self, track_usage=False):
        tracker = CorrelationTracker(
            window_horizon=6 * HOUR, min_pair_support=1,
            history_length=5, track_usage=track_usage,
        )
        tracker.observe(0.0, ["a", "b", "c"])
        tracker.observe(HOUR, ["a", "b"])
        tracker.evaluate(2 * HOUR, ["a"])
        tracker.observe(2.5 * HOUR, ["b", "c"])
        return tracker

    def fresh(self, track_usage=False):
        return CorrelationTracker(
            window_horizon=6 * HOUR, min_pair_support=1,
            history_length=5, track_usage=track_usage,
        )

    def test_roundtrip_is_bit_identical(self):
        tracker = self.build()
        restored = self.fresh()
        restored.restore(json_roundtrip(tracker.snapshot()))
        assert restored.snapshot() == tracker.snapshot()
        # Continuation is identical too: same evaluation, same histories.
        for instance in (tracker, restored):
            instance.observe(3 * HOUR, ["a", "c"])
        left = tracker.evaluate(4 * HOUR, ["a", "b"])
        right = restored.evaluate(4 * HOUR, ["a", "b"])
        assert left == right
        assert tracker.count_history() == restored.count_history()
        for candidate in tracker.tracked_pairs():
            assert list(tracker.history(candidate)) \
                == list(restored.history(candidate))

    def test_usage_distributions_roundtrip(self):
        tracker = self.build(track_usage=True)
        restored = self.fresh(track_usage=True)
        restored.restore(json_roundtrip(tracker.snapshot()))
        assert restored._usage == tracker._usage
        # Usage eviction stays exact after the round trip.
        tracker.advance_to(7 * HOUR)
        restored.advance_to(7 * HOUR)
        assert restored._usage == tracker._usage

    def test_structural_mismatch_names_the_parameter(self):
        tracker = self.build()
        other = CorrelationTracker(
            window_horizon=12 * HOUR, min_pair_support=1, history_length=5,
        )
        with pytest.raises(SnapshotMismatchError, match="window_horizon"):
            other.restore(tracker.snapshot())

    def test_conforms_to_protocol(self):
        assert isinstance(self.build(), Snapshotable)


class TestShiftDetector:
    def test_roundtrip_preserves_decayed_scores(self):
        detector = ShiftDetector(min_history=1)
        observation = PairObservation(
            pair=pair("a", "b"), timestamp=100.0, correlation=0.8,
            counts=None, seed_tag="a",
        )
        detector.update(observation, [0.1, 0.2, 0.1])
        restored = ShiftDetector(min_history=1)
        restored.restore(json_roundtrip(detector.snapshot()))
        assert restored.snapshot() == detector.snapshot()
        assert restored.score_at(pair("a", "b"), 500.0) \
            == detector.score_at(pair("a", "b"), 500.0)

    def test_decay_mismatch_rejected(self):
        detector = ShiftDetector()
        other = ShiftDetector(decay=ExponentialDecay(half_life=1.0))
        with pytest.raises(SnapshotMismatchError, match="decay_half_life"):
            other.restore(detector.snapshot())


class TestRankingBuilder:
    def test_roundtrip_preserves_policy(self):
        builder = RankingBuilder(top_k=7, min_score=0.25)
        restored = RankingBuilder(top_k=3)
        restored.restore(json_roundtrip(builder.snapshot()))
        assert restored.top_k == 7
        assert restored.min_score == 0.25

    def test_invalid_policy_rejected(self):
        state = RankingBuilder(top_k=5).snapshot()
        state["top_k"] = 0
        with pytest.raises(ValueError):
            RankingBuilder().restore(state)
