"""The journal layer of the store: frames, chain commits, corruption.

The delta format's durability story: the manifest (written at base time,
manifest-rename-as-sole-commit) pins the chain — base generation and
shard count — and each journal tick commits itself through CRC-framed
segment files at strictly consecutive generations, with one durability
barrier per tick.  A torn or missing *final* tick is the expected shape
of a power cut and falls back to the committed prefix; damage anywhere
before the tail (impossible for an interrupted append, since a new
writer must re-base first) fails the whole load — never a partial or
guessed restore.
"""

import json

import pytest

from repro.core.config import EnBlogueConfig
from repro.core.engine import EnBlogue
from repro.datasets.documents import Document
from repro.persistence.snapshot import (
    SnapshotCorruptionError,
    SnapshotMismatchError,
)
from repro.persistence.store import (
    MANIFEST_NAME,
    append_delta,
    read_checkpoint,
    read_manifest,
    write_checkpoint,
)


def config():
    return EnBlogueConfig(
        window_horizon=100.0,
        evaluation_interval=25.0,
        num_seeds=4,
        min_seed_count=1,
        min_pair_support=1,
        min_history=2,
        predictor="moving_average",
        predictor_window=3,
        history_length=6,
    )


def documents(count, start=0.0, step=3.0):
    tags = ["alpha", "beta", "gamma", "delta"]
    return [
        Document(
            timestamp=start + index * step,
            doc_id=f"doc-{start + index * step}",
            tags=frozenset([tags[index % 4], tags[(index + 1) % 4]]),
        )
        for index in range(count)
    ]


def snapshot_copy(engine):
    return json.loads(json.dumps(engine.snapshot()))


@pytest.fixture
def chained(tmp_path):
    """An engine with a base + two committed journal ticks on disk.

    Returns ``(engine, prefixes)`` where ``prefixes[i]`` is the engine
    state as of tick ``i`` (0 = base), for asserting prefix fallbacks.
    """
    engine = EnBlogue(config())
    engine.process_many(documents(30))
    engine.save_checkpoint(tmp_path, track_deltas=True)
    prefixes = [snapshot_copy(engine)]
    engine.process_many(documents(15, start=90.0))
    engine.save_delta_checkpoint(tmp_path)
    prefixes.append(snapshot_copy(engine))
    engine.process_many(documents(15, start=135.0))
    engine.save_delta_checkpoint(tmp_path)
    prefixes.append(snapshot_copy(engine))
    return engine, prefixes


def journal_paths(directory):
    return sorted(directory.glob("engine-*.delta"))


class TestJournalCommit:
    def test_segments_are_consecutive_and_framed(self, chained, tmp_path):
        paths = journal_paths(tmp_path)
        assert [path.name for path in paths] \
            == ["engine-00000002.delta", "engine-00000003.delta"]
        for path in paths:
            assert path.read_bytes().startswith(b"ENBDELTA1 ")
        # The manifest pins the chain the segments extend.
        assert read_manifest(tmp_path)["base_generation"] == 1

    def test_read_folds_journal_onto_base(self, chained, tmp_path):
        engine, _ = chained
        _, state = read_checkpoint(tmp_path)
        assert state == engine.snapshot()

    def test_rebase_prunes_the_journal(self, chained, tmp_path):
        engine, _ = chained
        engine.save_checkpoint(tmp_path, track_deltas=True)
        assert not list(tmp_path.glob("*.delta"))
        assert read_manifest(tmp_path)["base_generation"] == 4
        _, state = read_checkpoint(tmp_path)
        assert state == engine.snapshot()

    def test_crash_then_rebase_leaves_a_clean_chain(self, chained, tmp_path):
        # A torn tail from a crash is swept away by the successor's
        # mandatory re-base (a new process has no chain to extend).
        engine, _ = chained
        (tmp_path / "engine-00000004.delta").write_bytes(
            b"ENBDELTA1 00009999 00000000\n{torn"
        )
        engine.save_checkpoint(tmp_path, track_deltas=True)
        assert not list(tmp_path.glob("*.delta"))
        _, state = read_checkpoint(tmp_path)
        assert state == engine.snapshot()

    def test_generation_continuity_guard(self, chained, tmp_path):
        # Another writer re-based the directory: appending the stale
        # chain must fail instead of mixing two histories.
        engine, _ = chained
        delta = engine.delta_since(4)
        write_checkpoint(tmp_path, engine.snapshot())
        with pytest.raises(SnapshotMismatchError, match="re-based"):
            append_delta(tmp_path, delta, expected_base=1,
                         expected_generation=3)

    def test_extended_chain_guard(self, chained, tmp_path):
        # Same base, but someone else appended a tick meanwhile.
        engine, _ = chained
        first = engine.delta_since(4)
        second = engine.delta_since(5)
        append_delta(tmp_path, first, expected_base=1, expected_generation=3)
        with pytest.raises(SnapshotMismatchError, match="extended"):
            append_delta(tmp_path, second, expected_base=1,
                         expected_generation=3)

    def test_shard_count_must_match_the_base(self, tmp_path):
        write_checkpoint(tmp_path, {
            "kind": "sharded-enblogue", "version": 1, "config": {},
            "shards": [{"s": 0}, {"s": 1}],
        })
        with pytest.raises(SnapshotMismatchError, match="shard count"):
            append_delta(tmp_path, {"kind": "sharded-enblogue-delta",
                                    "shards": [{"s": 0}]})


class TestJournalCorruption:
    def test_bad_crc_mid_chain_is_corruption_not_partial_restore(
        self, chained, tmp_path
    ):
        # Damage in a non-final tick cannot be an interrupted append
        # (later ticks exist), so the load must fail whole — silently
        # restoring base + tick 2 without tick 1 would be a lie.
        first_segment = journal_paths(tmp_path)[0]
        payload = first_segment.read_bytes()
        first_segment.write_bytes(payload[:-7] + b"0000000")
        with pytest.raises(SnapshotCorruptionError, match="mid-chain"):
            read_checkpoint(tmp_path)

    def test_torn_final_segment_falls_back_to_committed_prefix(
        self, chained, tmp_path
    ):
        # The expected shape of a power cut: the final tick's (unsynced)
        # frame is torn.  The reader keeps the committed prefix instead
        # of failing the restore.
        _, prefixes = chained
        last_segment = journal_paths(tmp_path)[-1]
        last_segment.write_bytes(last_segment.read_bytes()[:40])
        _, state = read_checkpoint(tmp_path)
        assert state == prefixes[1]

    def test_missing_final_segment_falls_back_to_committed_prefix(
        self, chained, tmp_path
    ):
        _, prefixes = chained
        journal_paths(tmp_path)[-1].unlink()
        _, state = read_checkpoint(tmp_path)
        assert state == prefixes[1]

    def test_torn_suffix_falls_back_to_the_verified_prefix(
        self, chained, tmp_path
    ):
        # Without per-segment data fsync a power cut can tear *several*
        # trailing ticks at once (filesystems without ordered data
        # flushing); everything after the first torn frame being torn
        # too is the crash signature, so the verified prefix survives.
        _, prefixes = chained
        for path in journal_paths(tmp_path):
            path.write_bytes(path.read_bytes()[:40])
        _, state = read_checkpoint(tmp_path)
        assert state == prefixes[0]

    def test_truncated_mid_chain_frame_is_corruption(self, chained, tmp_path):
        first_segment = journal_paths(tmp_path)[0]
        first_segment.write_bytes(first_segment.read_bytes()[:40])
        with pytest.raises(SnapshotCorruptionError, match="torn"):
            read_checkpoint(tmp_path)

    def test_missing_mid_chain_segment_is_a_gap(self, chained, tmp_path):
        journal_paths(tmp_path)[0].unlink()
        with pytest.raises(SnapshotCorruptionError, match="gap"):
            read_checkpoint(tmp_path)

    def test_foreign_bytes_mid_chain_are_corruption(self, chained, tmp_path):
        first_segment = journal_paths(tmp_path)[0]
        first_segment.write_bytes(b"{\"not\": \"framed\"}")
        with pytest.raises(SnapshotCorruptionError, match="frame header"):
            read_checkpoint(tmp_path)

    def test_orphan_beyond_a_gap_is_corruption(self, chained, tmp_path):
        # Sequential appends cannot skip a generation, so a segment
        # beyond a hole means tampering — refuse to guess.
        (tmp_path / "engine-00000099.delta").write_bytes(
            b"ENBDELTA1 00000002 00000000\n{}"
        )
        with pytest.raises(SnapshotCorruptionError, match="gap"):
            read_checkpoint(tmp_path)

    def test_resume_from_a_torn_tail_continues_from_the_prefix(
        self, chained, tmp_path
    ):
        # End to end: after a simulated power cut, load_engine restores
        # the prefix and reports the prefix's progress, so a replay
        # re-feeds exactly the lost tick's documents.
        from repro.persistence import load_engine

        _, prefixes = chained
        journal_paths(tmp_path)[-1].unlink()
        engine, _ = load_engine(tmp_path)
        assert engine.documents_processed \
            == prefixes[1]["documents_processed"]


class TestFormatCompatibility:
    def test_version_1_manifest_without_journal_still_reads(self, tmp_path):
        # PR 3 checkpoints predate the journal; they must stay loadable.
        engine = EnBlogue(config())
        engine.process_many(documents(20))
        engine.save_checkpoint(tmp_path)
        manifest_path = tmp_path / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = 1
        del manifest["base_generation"]
        manifest_path.write_text(json.dumps(manifest))
        _, state = read_checkpoint(tmp_path)
        assert state == engine.snapshot()
