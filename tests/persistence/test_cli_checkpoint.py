"""CLI checkpoint/resume: flags, manifest extras, resume equivalence."""

import json

import pytest

from repro.cli import main
from repro.persistence.store import read_manifest

CKPT_ARGS = ["--dataset", "tweets", "--hours", "8"]


def run(args):
    # --seed is a top-level flag (it precedes the subcommand).
    return main(["--seed", "3", *args])


class TestCheckpointFlags:
    def test_checkpoint_every_requires_dir(self):
        with pytest.raises(SystemExit, match="checkpoint-dir"):
            run(["replay", *CKPT_ARGS, "--checkpoint-every", "2"])

    def test_final_checkpoint_without_cadence(self, tmp_path, capsys):
        directory = tmp_path / "ckpt"
        assert run(["replay", *CKPT_ARGS,
                    "--checkpoint-dir", str(directory)]) == 0
        assert "wrote 1 checkpoint(s)" in capsys.readouterr().out
        manifest = read_manifest(directory)
        assert manifest["kind"] == "enblogue"
        assert manifest["extras"]["dataset"] == "tweets"
        assert manifest["extras"]["hours"] == 8
        assert manifest["extras"]["seed"] == 3

    def test_periodic_checkpoints_record_dataset_extras(self, tmp_path):
        directory = tmp_path / "ckpt"
        assert run(["replay", *CKPT_ARGS, "--shards", "2",
                    "--checkpoint-every", "3",
                    "--checkpoint-dir", str(directory)]) == 0
        manifest = read_manifest(directory)
        assert manifest["kind"] == "sharded-enblogue"
        assert manifest["num_shards"] == 2
        # The cadence excludes the forced final evaluation, so the saved
        # checkpoint sits mid-stream and a resume has documents to replay.
        total = 8 * 40  # hours * tweets_per_hour
        assert manifest["documents_processed"] < total


class TestResume:
    def test_resume_reshard_matches_uninterrupted_run(self, tmp_path, capsys):
        directory = tmp_path / "ckpt"
        full_export = tmp_path / "full.json"
        resumed_export = tmp_path / "resumed.json"
        # Uninterrupted run of the same stream, exported for comparison.
        assert run(["replay", *CKPT_ARGS,
                    "--export", str(full_export)]) == 0
        # Interrupted run: 2 shards, checkpoint every 3 rankings …
        assert run(["replay", *CKPT_ARGS, "--shards", "2",
                    "--checkpoint-every", "3",
                    "--checkpoint-dir", str(directory)]) == 0
        # … resumed into 4 shards.
        assert run(["replay", "--resume", str(directory), "--shards", "4",
                    "--export", str(resumed_export)]) == 0
        out = capsys.readouterr().out
        assert "resumed 'tweets'" in out
        full = json.loads(full_export.read_text())
        resumed = json.loads(resumed_export.read_text())
        assert len(resumed) >= 2
        assert resumed == full[-len(resumed):]

    def test_resume_single_engine_checkpoint(self, tmp_path):
        directory = tmp_path / "ckpt"
        full_export = tmp_path / "full.json"
        resumed_export = tmp_path / "resumed.json"
        assert run(["replay", *CKPT_ARGS, "--export", str(full_export)]) == 0
        assert run(["replay", *CKPT_ARGS, "--checkpoint-every", "3",
                    "--checkpoint-dir", str(directory)]) == 0
        assert run(["replay", "--resume", str(directory),
                    "--export", str(resumed_export)]) == 0
        full = json.loads(full_export.read_text())
        resumed = json.loads(resumed_export.read_text())
        assert resumed == full[-len(resumed):]

    def test_resume_rejects_overrides_it_cannot_honor(self, tmp_path):
        # Flags the resumed engine cannot apply must error, not silently
        # drop — the config comes from the checkpoint, the stream from the
        # manifest extras.
        directory = tmp_path / "ckpt"
        assert run(["replay", *CKPT_ARGS, "--checkpoint-every", "3",
                    "--checkpoint-dir", str(directory)]) == 0
        with pytest.raises(SystemExit, match="--top-k"):
            run(["replay", "--resume", str(directory), "--top-k", "5"])
        with pytest.raises(SystemExit, match="--hours"):
            run(["replay", "--resume", str(directory), "--hours", "48"])
        # Re-passing the recorded values is a harmless no-op.
        assert run(["replay", "--resume", str(directory),
                    "--dataset", "tweets", "--hours", "8"]) == 0

    def test_resume_with_nothing_left_produces_no_stray_ranking(
        self, tmp_path, capsys
    ):
        # An end-of-replay checkpoint has consumed the whole stream; a
        # resume must not force a duplicate evaluation at the same
        # timestamp just because the engine has history.
        directory = tmp_path / "ckpt"
        assert run(["replay", *CKPT_ARGS,
                    "--checkpoint-dir", str(directory)]) == 0
        capsys.readouterr()
        assert run(["replay", "--resume", str(directory)]) == 0
        assert "replayed 0, produced 0 rankings" in capsys.readouterr().out

    def test_resume_can_keep_checkpointing(self, tmp_path):
        directory = tmp_path / "ckpt"
        assert run(["replay", *CKPT_ARGS, "--checkpoint-every", "3",
                    "--checkpoint-dir", str(directory)]) == 0
        first = read_manifest(directory)["documents_processed"]
        assert run(["replay", "--resume", str(directory),
                    "--checkpoint-dir", str(directory)]) == 0
        second = read_manifest(directory)["documents_processed"]
        assert second == 8 * 40
        assert second > first
