"""Checkpoint, journal and resume semantics of tiered tracking.

The sketch tier rides the base snapshot; journal segments carry raw
documents, and the fold re-runs admission from the base tier — so a
chain restore must continue bit-identically to the uninterrupted run,
on both engines, including a shard-count change at resume time.
"""

from repro.core.config import live_stream_config
from repro.core.engine import EnBlogue
from repro.datasets.twitter import TweetStreamGenerator
from repro.persistence.resume import load_engine
from repro.sharding import ShardedEnBlogue

TIERED = live_stream_config().with_overrides(
    tracking="tiered", promote_support=3
)


def stream(hours=12, seed=11):
    corpus, _ = TweetStreamGenerator(
        hours=hours, tweets_per_hour=40, seed=seed
    ).generate()
    return list(corpus)


def ranking_signature(engine):
    return [
        [(topic.pair, topic.score) for topic in ranking.topics]
        for ranking in engine.ranking_history()
    ]


def checkpointed_run(engine, docs, directory, delta_every=200):
    """Process ``docs``, arming a delta chain halfway through."""
    half = len(docs) // 2
    for index, document in enumerate(docs):
        engine.process(document)
        if index == half:
            engine.save_checkpoint(directory, track_deltas=True)
        elif index > half and index % delta_every == 0:
            engine.save_delta_checkpoint(directory)
    engine.save_delta_checkpoint(directory)


class TestSingleEngine:
    def test_full_checkpoint_resume_is_bit_identical(self, tmp_path):
        docs = stream()
        uninterrupted = EnBlogue(TIERED)
        for document in docs:
            uninterrupted.process(document)
        uninterrupted.evaluate_now()
        expected = ranking_signature(uninterrupted)

        first = EnBlogue(TIERED)
        half = len(docs) // 2
        for document in docs[:half]:
            first.process(document)
        first.save_checkpoint(tmp_path)

        resumed, _ = load_engine(tmp_path)
        assert resumed.runtime_info()["tracking"] == "tiered"
        for document in docs[resumed.documents_processed:]:
            resumed.process(document)
        resumed.evaluate_now()
        assert ranking_signature(resumed) == expected

    def test_delta_chain_resume_is_bit_identical(self, tmp_path):
        docs = stream()
        uninterrupted = EnBlogue(TIERED)
        for document in docs:
            uninterrupted.process(document)
        uninterrupted.evaluate_now()
        expected = ranking_signature(uninterrupted)

        first = EnBlogue(TIERED)
        checkpointed_run(first, docs, tmp_path)

        resumed, _ = load_engine(tmp_path)
        for document in docs[resumed.documents_processed:]:
            resumed.process(document)
        resumed.evaluate_now()
        assert ranking_signature(resumed) == expected

    def test_folded_tier_state_matches_live(self, tmp_path):
        docs = stream()
        live = EnBlogue(TIERED)
        checkpointed_run(live, docs, tmp_path)
        resumed, _ = load_engine(tmp_path)
        assert resumed.tracker.tier.snapshot() == \
            live.tracker.tier.snapshot()


class TestShardedEngine:
    def test_delta_chain_resume_into_more_shards(self, tmp_path):
        docs = stream()
        uninterrupted = ShardedEnBlogue(TIERED, num_shards=2, chunk_size=32)
        try:
            for document in docs:
                uninterrupted.process(document)
            uninterrupted.evaluate_now()
            expected = ranking_signature(uninterrupted)
        finally:
            uninterrupted.close()

        first = ShardedEnBlogue(TIERED, num_shards=2, chunk_size=32)
        try:
            checkpointed_run(first, docs, tmp_path)
        finally:
            first.close()

        resumed, _ = load_engine(tmp_path, num_shards=4)
        try:
            for document in docs[resumed.documents_processed:]:
                resumed.process(document)
            resumed.evaluate_now()
            assert ranking_signature(resumed) == expected
        finally:
            resumed.close()
