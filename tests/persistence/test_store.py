"""The on-disk checkpoint format: atomicity, CRCs, version gates."""

import json

import pytest

from repro.persistence.snapshot import (
    SnapshotCorruptionError,
    SnapshotVersionError,
)
from repro.persistence.store import (
    FORMAT_VERSION,
    MANIFEST_NAME,
    read_checkpoint,
    read_manifest,
    write_checkpoint,
)


def sample_state(shards=None):
    state = {
        "kind": "sharded-enblogue" if shards else "enblogue",
        "version": 1,
        "config": {"name": "test", "top_k": 10},
        "documents_processed": 42,
        "payload": [1.5, "x", None],
    }
    if shards:
        state["shards"] = shards
    return state


def state_path(directory, name):
    """Resolve a state file through the manifest (names carry generations)."""
    return directory / read_manifest(directory)["files"][name]["path"]


class TestRoundTrip:
    def test_single_engine_state(self, tmp_path):
        state = sample_state()
        write_checkpoint(tmp_path, state, extras={"dataset": "tweets"})
        manifest, loaded = read_checkpoint(tmp_path)
        assert loaded == state
        assert manifest["kind"] == "enblogue"
        assert manifest["num_shards"] is None
        assert manifest["documents_processed"] == 42
        assert manifest["extras"] == {"dataset": "tweets"}

    def test_sharded_state_lands_in_per_shard_files(self, tmp_path):
        shards = [{"kind": "shard-worker", "shard_id": 0},
                  {"kind": "shard-worker", "shard_id": 1}]
        state = sample_state(shards=shards)
        write_checkpoint(tmp_path, state)
        assert state_path(tmp_path, "shard-0").exists()
        assert state_path(tmp_path, "shard-1").exists()
        manifest, loaded = read_checkpoint(tmp_path)
        assert loaded == state
        assert manifest["num_shards"] == 2

    def test_overwrite_replaces_previous_checkpoint(self, tmp_path):
        write_checkpoint(tmp_path, sample_state())
        newer = sample_state()
        newer["documents_processed"] = 99
        write_checkpoint(tmp_path, newer)
        _, loaded = read_checkpoint(tmp_path)
        assert loaded["documents_processed"] == 99

    def test_overwrite_prunes_the_previous_generation(self, tmp_path):
        write_checkpoint(tmp_path, sample_state(shards=[{"s": 0}]))
        first = {entry["path"]
                 for entry in read_manifest(tmp_path)["files"].values()}
        write_checkpoint(tmp_path, sample_state(shards=[{"s": 0}]))
        remaining = {path.name for path in tmp_path.glob("*.json")}
        assert not first & remaining

    def test_crash_before_manifest_commit_keeps_previous_checkpoint(
        self, tmp_path
    ):
        # A new checkpoint is only committed by the manifest rename; state
        # files written before a crash (simulated here as orphaned
        # next-generation files, torn or not) must neither shadow nor
        # corrupt the committed checkpoint.
        state = sample_state(shards=[{"s": 0}])
        write_checkpoint(tmp_path, state)
        (tmp_path / "engine-00000002.json").write_text("{torn")
        (tmp_path / "shard-0000-00000002.json").write_text("{}")
        manifest, loaded = read_checkpoint(tmp_path)
        assert loaded == state
        assert manifest["generation"] == 1
        # The next successful checkpoint must not collide with the orphans.
        write_checkpoint(tmp_path, sample_state(shards=[{"s": 1}]))
        assert read_manifest(tmp_path)["generation"] == 3
        _, newest = read_checkpoint(tmp_path)
        assert newest["shards"] == [{"s": 1}]

    def test_no_temporary_files_left_behind(self, tmp_path):
        write_checkpoint(tmp_path, sample_state(shards=[{"s": 0}]))
        assert not list(tmp_path.glob("*.tmp"))

    def test_write_does_not_mutate_the_state_dict(self, tmp_path):
        shards = [{"s": 0}]
        state = sample_state(shards=shards)
        write_checkpoint(tmp_path, state)
        assert state["shards"] is shards


class TestErrorSurfaces:
    def test_missing_manifest_is_corruption(self, tmp_path):
        with pytest.raises(SnapshotCorruptionError, match="manifest"):
            read_checkpoint(tmp_path)

    def test_unsupported_format_version(self, tmp_path):
        write_checkpoint(tmp_path, sample_state())
        manifest_path = tmp_path / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = FORMAT_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SnapshotVersionError, match="format version"):
            read_checkpoint(tmp_path)

    def test_tampered_state_file_fails_the_crc(self, tmp_path):
        write_checkpoint(tmp_path, sample_state())
        # Valid JSON, wrong bytes: only the CRC can catch this.
        state_path(tmp_path, "engine").write_text(
            json.dumps({"kind": "enblogue", "documents_processed": 7})
        )
        with pytest.raises(SnapshotCorruptionError, match="CRC-32"):
            read_checkpoint(tmp_path)

    def test_manifest_without_crc_is_corruption_not_a_type_error(
        self, tmp_path
    ):
        write_checkpoint(tmp_path, sample_state())
        manifest_path = tmp_path / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        del manifest["files"]["engine"]["crc32"]
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SnapshotCorruptionError, match="CRC-32"):
            read_checkpoint(tmp_path)

    def test_truncated_state_file_is_corruption(self, tmp_path):
        write_checkpoint(tmp_path, sample_state(shards=[{"s": 0}]))
        shard_path = state_path(tmp_path, "shard-0")
        shard_path.write_bytes(shard_path.read_bytes()[:5])
        with pytest.raises(SnapshotCorruptionError):
            read_checkpoint(tmp_path)

    def test_missing_shard_file_is_corruption(self, tmp_path):
        write_checkpoint(tmp_path, sample_state(shards=[{"s": 0}, {"s": 1}]))
        state_path(tmp_path, "shard-1").unlink()
        with pytest.raises(SnapshotCorruptionError, match="shard"):
            read_checkpoint(tmp_path)

    def test_garbage_manifest_is_corruption(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("not json {")
        with pytest.raises(SnapshotCorruptionError, match="JSON"):
            read_manifest(tmp_path)
