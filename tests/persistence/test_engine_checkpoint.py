"""Engine-level checkpoint/restore: the bit-identical resume guarantee.

The acceptance bar of the persistence layer: a run interrupted between two
documents and resumed from its checkpoint — on either engine, either
backend, and *including a different shard count* — produces rankings
bit-identical to the uninterrupted run.  "Bit-identical" is full
``EmergentTopic`` equality over the complete ranking history, exactly as
in the sharded-equivalence suite.
"""

import pytest

from repro.core.config import EnBlogueConfig
from repro.core.engine import EnBlogue
from repro.datasets.twitter import TweetStreamGenerator
from repro.persistence import load_engine
from repro.persistence.snapshot import SnapshotMismatchError
from repro.sharding import ProcessBackend, ShardedEnBlogue
from repro.sharding.reshard import reshard_worker_states

HOUR = 3600.0


def config(**overrides):
    defaults = dict(
        window_horizon=6 * HOUR,
        evaluation_interval=HOUR,
        num_seeds=10,
        min_seed_count=1,
        min_pair_support=1,
        min_history=2,
        predictor="moving_average",
        predictor_window=3,
    )
    defaults.update(overrides)
    return EnBlogueConfig(**defaults)


def signature(engine):
    return [
        (ranking.timestamp, ranking.label, ranking.topics)
        for ranking in engine.ranking_history()
    ]


@pytest.fixture(scope="module")
def tweet_docs():
    corpus, _ = TweetStreamGenerator(hours=16, tweets_per_hour=40,
                                     seed=7).generate()
    return list(corpus)


@pytest.fixture(scope="module")
def reference(tweet_docs):
    engine = EnBlogue(config())
    engine.process_many(tweet_docs)
    return signature(engine)


class TestSingleEngine:
    def test_mid_stream_checkpoint_resumes_bit_identically(
        self, tweet_docs, reference, tmp_path
    ):
        engine = EnBlogue(config())
        engine.process_many(tweet_docs[:200])
        engine.save_checkpoint(tmp_path)
        resumed, _ = load_engine(tmp_path)
        assert isinstance(resumed, EnBlogue)
        assert resumed.documents_processed == 200
        resumed.process_many(tweet_docs[200:])
        assert signature(resumed) == reference

    def test_checkpoint_mid_catchup_window(self, reference, tweet_docs,
                                           tmp_path):
        # Checkpoint right after a boundary was crossed (a ranking was just
        # published): the very next document resumes the catch-up loop.
        engine = EnBlogue(config())
        boundary_doc = next(
            index for index, document in enumerate(tweet_docs)
            if engine.process(document) is not None
        )
        engine.save_checkpoint(tmp_path)
        resumed, _ = load_engine(tmp_path)
        resumed.process_many(tweet_docs[boundary_doc + 1:])
        assert signature(resumed) == reference

    def test_restore_under_different_config_is_rejected(self, tweet_docs,
                                                        tmp_path):
        engine = EnBlogue(config())
        engine.process_many(tweet_docs[:50])
        engine.save_checkpoint(tmp_path)
        other = EnBlogue(config(top_k=5, num_seeds=20))
        from repro.persistence.store import read_checkpoint
        _, state = read_checkpoint(tmp_path)
        with pytest.raises(SnapshotMismatchError) as excinfo:
            other.restore(state)
        assert "top_k" in str(excinfo.value)
        assert "num_seeds" in str(excinfo.value)

    def test_single_checkpoint_cannot_be_resharded(self, tweet_docs, tmp_path):
        engine = EnBlogue(config())
        engine.process_many(tweet_docs[:50])
        engine.save_checkpoint(tmp_path)
        with pytest.raises(SnapshotMismatchError, match="single-engine"):
            load_engine(tmp_path, num_shards=4)

    def test_listeners_see_post_resume_rankings(self, tweet_docs, tmp_path):
        engine = EnBlogue(config())
        engine.process_many(tweet_docs[:200])
        engine.save_checkpoint(tmp_path)
        resumed, _ = load_engine(tmp_path)
        seen = []
        resumed.add_ranking_listener(seen.append)
        resumed.process_many(tweet_docs[200:])
        assert seen == resumed.ranking_history()[-len(seen):]
        assert len(seen) > 0


class TestShardedEngine:
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_serial_checkpoint_resumes_bit_identically(
        self, tweet_docs, reference, tmp_path, num_shards
    ):
        with ShardedEnBlogue(config(), num_shards=num_shards,
                             backend="serial") as engine:
            engine.process_many(tweet_docs[:200])
            engine.save_checkpoint(tmp_path)
        resumed, manifest = load_engine(tmp_path)
        assert manifest["num_shards"] == num_shards
        with resumed:
            resumed.process_many(tweet_docs[200:])
            assert signature(resumed) == reference

    @pytest.mark.parametrize("resume_shards", [1, 2, 4])
    def test_reshard_on_restore_is_bit_identical(
        self, tweet_docs, reference, tmp_path, resume_shards
    ):
        # The headline property: a 2-shard checkpoint restores into any
        # shard count by re-routing the pair state through the CRC-32 hash.
        with ShardedEnBlogue(config(), num_shards=2,
                             backend="serial") as engine:
            engine.process_many(tweet_docs[:200])
            engine.save_checkpoint(tmp_path)
        resumed, _ = load_engine(tmp_path, num_shards=resume_shards)
        with resumed:
            assert resumed.num_shards == resume_shards
            resumed.process_many(tweet_docs[200:])
            assert signature(resumed) == reference

    def test_process_backend_spawn_roundtrip(self, tweet_docs, reference,
                                             tmp_path):
        # The pinned default ("spawn") end to end: checkpoint a process
        # deployment mid-stream, resume it as a re-sharded process
        # deployment.  This is the test that caught TagPair leaking its
        # process-salted cached hash through pickle.
        with ShardedEnBlogue(config(), num_shards=2,
                             backend="process") as engine:
            assert engine.backend.start_method == "spawn"
            engine.process_many(tweet_docs[:200])
            engine.save_checkpoint(tmp_path)
        resumed, _ = load_engine(tmp_path, num_shards=4, backend="process")
        with resumed:
            resumed.process_many(tweet_docs[200:])
            assert signature(resumed) == reference

    def test_resume_across_backends(self, tweet_docs, reference, tmp_path):
        # Backend choice is runtime, not stream state: a serial checkpoint
        # resumes under worker processes (and would vice versa).
        with ShardedEnBlogue(config(), num_shards=2,
                             backend="serial") as engine:
            engine.process_many(tweet_docs[:200])
            engine.save_checkpoint(tmp_path)
        resumed, _ = load_engine(
            tmp_path, backend=ProcessBackend(start_method="fork"),
        )
        with resumed:
            resumed.process_many(tweet_docs[200:])
            assert signature(resumed) == reference

    def test_chunk_size_is_free_to_differ_on_resume(self, tweet_docs,
                                                    reference, tmp_path):
        with ShardedEnBlogue(config(), num_shards=2, backend="serial",
                             chunk_size=64) as engine:
            engine.process_many(tweet_docs[:200])
            engine.save_checkpoint(tmp_path)
        resumed, _ = load_engine(tmp_path, chunk_size=7)
        with resumed:
            resumed.process_many(tweet_docs[200:])
            assert signature(resumed) == reference

    def test_snapshot_flushes_buffered_chunks(self, tweet_docs):
        with ShardedEnBlogue(config(), num_shards=2, backend="serial",
                             chunk_size=4096) as engine:
            engine.process_many(tweet_docs[:50])
            state = engine.snapshot()
        events = sum(
            len(shard["tracker"]["pair_events"]) for shard in state["shards"]
        )
        assert events > 0

    def test_closed_engine_refuses_snapshot_and_restore(self, tweet_docs):
        engine = ShardedEnBlogue(config(), num_shards=2, backend="serial")
        engine.process(tweet_docs[0])
        state = engine.snapshot()
        engine.close()
        with pytest.raises(RuntimeError, match="closed"):
            engine.snapshot()
        with pytest.raises(RuntimeError, match="closed"):
            engine.restore(state)


class TestReshardStates:
    def shard_states(self, tweet_docs, num_shards=2):
        with ShardedEnBlogue(config(), num_shards=num_shards,
                             backend="serial") as engine:
            engine.process_many(tweet_docs[:200])
            return engine.snapshot()["shards"]

    def test_reshard_is_deterministic(self, tweet_docs):
        states = self.shard_states(tweet_docs)
        assert reshard_worker_states(states, 3) \
            == reshard_worker_states(states, 3)

    def test_reshard_partitions_all_per_pair_state(self, tweet_docs):
        states = self.shard_states(tweet_docs)
        resharded = reshard_worker_states(states, 3)
        assert [s["shard_id"] for s in resharded] == [0, 1, 2]

        def union(states, extract):
            merged = []
            for state in states:
                merged.extend(extract(state))
            return sorted(merged, key=lambda e: (e[0], e[1]))

        for extract in (
            lambda s: s["tracker"]["candidates"]["pairs"],
            lambda s: s["tracker"]["histories"],
            lambda s: s["detector"]["scores"],
        ):
            assert union(states, extract) == union(resharded, extract)

    def test_empty_state_list_rejected(self):
        with pytest.raises(SnapshotMismatchError):
            reshard_worker_states([], 2)

    def test_disagreeing_shards_rejected(self, tweet_docs):
        states = self.shard_states(tweet_docs)
        states[1]["tracker"]["window_horizon"] = 123.0
        with pytest.raises(SnapshotMismatchError, match="window_horizon"):
            reshard_worker_states(states, 2)
