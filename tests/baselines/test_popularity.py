"""Tests for the popularity baseline."""

import pytest

from repro.baselines.popularity import PopularityBaseline
from repro.core.types import TagPair
from repro.datasets.documents import Document


def doc(t, tags):
    return Document(timestamp=float(t), doc_id=f"d{t}", tags=frozenset(tags))


class TestPopularityBaseline:
    def test_ranks_most_frequent_pairs(self):
        baseline = PopularityBaseline(window_horizon=100.0, evaluation_interval=10.0, top_k=3)
        stream = [doc(i, ["a", "b"]) for i in range(8)] + [doc(8, ["c", "d"])]
        baseline.process_many(stream)
        baseline.process(doc(20, ["a", "b"]))  # cross an evaluation boundary
        ranking = baseline.current_ranking()
        assert ranking is not None
        assert ranking[0].pair == TagPair("a", "b")
        assert ranking[0].score > ranking[-1].score or len(ranking) == 1

    def test_window_eviction_forgets_old_pairs(self):
        baseline = PopularityBaseline(window_horizon=10.0, evaluation_interval=10.0, top_k=5)
        baseline.process(doc(0, ["old", "pair"]))
        for t in range(30, 36):
            baseline.process(doc(t, ["new", "pair"]))
        baseline.process(doc(50, ["new", "pair"]))
        ranking = baseline.current_ranking()
        assert not ranking.contains_pair(TagPair("old", "pair"))

    def test_no_ranking_before_first_interval(self):
        baseline = PopularityBaseline(window_horizon=100.0, evaluation_interval=50.0)
        assert baseline.process(doc(0, ["a", "b"])) is None
        assert baseline.current_ranking() is None

    def test_ranking_history_accumulates(self):
        baseline = PopularityBaseline(window_horizon=100.0, evaluation_interval=10.0)
        for t in range(0, 45, 5):
            baseline.process(doc(t, ["a", "b"]))
        assert len(baseline.ranking_history()) >= 3

    def test_label_identifies_baseline(self):
        baseline = PopularityBaseline(window_horizon=10.0, evaluation_interval=5.0)
        baseline.process(doc(0, ["a", "b"]))
        baseline.process(doc(10, ["a", "b"]))
        assert baseline.current_ranking().label == "popularity"

    def test_validation(self):
        with pytest.raises(ValueError):
            PopularityBaseline(window_horizon=0.0)
        with pytest.raises(ValueError):
            PopularityBaseline(window_horizon=10.0, top_k=0)
