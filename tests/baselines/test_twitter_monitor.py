"""Tests for the TwitterMonitor-style burst-detection baseline."""

import pytest

from repro.baselines.twitter_monitor import TwitterMonitorBaseline
from repro.core.types import TagPair
from repro.datasets.documents import Document

HOUR = 3600.0


def doc(t, tags, i=0):
    return Document(timestamp=float(t), doc_id=f"d{t}-{i}", tags=frozenset(tags))


def steady_stream(hours, tag_sets_per_hour):
    """A stream emitting the given tag sets every hour."""
    documents = []
    for hour in range(hours):
        for i, tags in enumerate(tag_sets_per_hour):
            documents.append(doc(hour * HOUR + i, tags, i))
    return documents


class TestTwitterMonitorBaseline:
    def make(self, **overrides):
        defaults = dict(window_horizon=4 * HOUR, evaluation_interval=HOUR,
                        top_k=5, burst_threshold=2.5, min_tag_count=2)
        defaults.update(overrides)
        return TwitterMonitorBaseline(**defaults)

    def test_detects_bursting_tag_pair(self):
        baseline = self.make()
        # 20 quiet hours of background, then a sudden burst of (storm, coast).
        documents = steady_stream(20, [["news", "politics"], ["news", "economy"]])
        burst_start = 20 * HOUR
        for i in range(30):
            documents.append(doc(burst_start + i, ["storm", "coast"], i))
        documents.append(doc(burst_start + HOUR, ["news", "politics"]))
        baseline.process_many(documents)
        ranking = baseline.current_ranking()
        assert ranking is not None
        assert ranking.contains_pair(TagPair("coast", "storm"))

    def test_steady_popular_tags_do_not_trend(self):
        baseline = self.make()
        documents = steady_stream(30, [["news", "politics"]] * 5)
        baseline.process_many(documents)
        ranking = baseline.current_ranking()
        # Nothing bursts in a perfectly steady stream.
        assert ranking is not None
        assert len(ranking) == 0

    def test_misses_non_bursty_correlation_shift(self):
        # The Figure 1 situation: both tags keep their individual rates; only
        # the co-occurrence changes.  A burst detector sees nothing.
        baseline = self.make()
        documents = []
        for hour in range(30):
            base = hour * HOUR
            # "popular" appears 6 times per hour throughout, "rare" twice.
            for i in range(6):
                partner = "rare" if hour >= 20 and i < 2 else f"filler{i}"
                documents.append(doc(base + i, ["popular", partner], i))
            for i in range(2):
                if hour < 20 or i >= 2:
                    documents.append(doc(base + 10 + i, ["rare", f"other{i}"], 10 + i))
        baseline.process_many(documents)
        for ranking in baseline.ranking_history():
            assert not ranking.contains_pair(TagPair("popular", "rare"))

    def test_no_ranking_before_first_interval(self):
        baseline = self.make()
        assert baseline.process(doc(0, ["a", "b"])) is None

    def test_label(self):
        baseline = self.make()
        baseline.process(doc(0, ["a", "b"]))
        baseline.process(doc(2 * HOUR, ["a", "b"]))
        assert baseline.current_ranking().label == "twitter-monitor"

    def test_validation(self):
        with pytest.raises(ValueError):
            TwitterMonitorBaseline(window_horizon=0.0, evaluation_interval=1.0)
        with pytest.raises(ValueError):
            TwitterMonitorBaseline(window_horizon=1.0, evaluation_interval=0.0)
        with pytest.raises(ValueError):
            TwitterMonitorBaseline(window_horizon=1.0, evaluation_interval=1.0, top_k=0)
