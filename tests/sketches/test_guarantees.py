"""Error-bound, merge and serialization guarantees of the sketches.

The properties the tiered tracker leans on: a Count-Min estimate never
undercounts and overcounts by at most ``(e / width) * N`` with high
probability, a Bloom filter's false-positive rate stays near its design
point, merges are associative (the distributed-aggregation contract),
and snapshots round-trip bit for bit.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.sketches.bloom import BloomFilter
from repro.sketches.countmin import CountMinSketch
from repro.sketches.tier import SketchTier

keys = st.text(alphabet="abcdefghij", min_size=1, max_size=6)


class TestCountMinErrorBounds:
    @given(st.lists(keys, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_estimate_never_underestimates(self, stream):
        sketch = CountMinSketch(width=32, depth=3)
        true = {}
        for key in stream:
            sketch.add(key)
            true[key] = true.get(key, 0) + 1
        for key, count in true.items():
            assert sketch.estimate(key) >= count

    def test_overcount_within_epsilon_n(self):
        # Deterministic instance of the classic bound: with probability
        # 1 - e^-depth per key the overcount stays below (e / width) * N.
        # Fixed seed and stream make this a pinned instance, not a flake.
        width, depth = 256, 4
        sketch = CountMinSketch(width=width, depth=depth, seed=11)
        true = {}
        for i in range(5000):
            key = f"key-{(i * 7919) % 800:03d}"
            sketch.add(key)
            true[key] = true.get(key, 0) + 1
        bound = math.e / width * sketch.total
        violations = sum(
            1 for key, count in true.items()
            if sketch.estimate(key) - count > bound
        )
        # The per-key failure probability is e^-4 (< 2%); this pinned
        # instance has zero violations and must stay that way.
        assert violations == 0

    def test_total_is_n(self):
        sketch = CountMinSketch(width=64, depth=4)
        sketch.add("a", 5)
        sketch.add("b", 2)
        assert sketch.total == 7


class TestBloomFalsePositiveRate:
    def test_fpr_near_design_point(self):
        capacity, error_rate = 1000, 0.01
        bloom = BloomFilter(capacity=capacity, error_rate=error_rate, seed=3)
        bloom.update(f"member-{i}" for i in range(capacity))
        for i in range(capacity):
            assert f"member-{i}" in bloom
        false_positives = sum(
            1 for i in range(10000) if f"absent-{i}" in bloom
        )
        # At design load the realized FPR should be within 3x of the
        # design point (0.01); the fixed seed pins the instance.
        assert false_positives / 10000 < 0.03


class TestMergeAssociativity:
    def _cms(self, seed_keys):
        sketch = CountMinSketch(width=64, depth=4, seed=5)
        for key, count in seed_keys:
            sketch.add(key, count)
        return sketch

    def test_countmin_merge_is_associative(self):
        parts = [
            [("a", 2), ("b", 1)],
            [("b", 4), ("c", 3)],
            [("a", 1), ("d", 9)],
        ]
        left = self._cms(parts[0])
        left.merge(self._cms(parts[1]))
        left.merge(self._cms(parts[2]))
        right_tail = self._cms(parts[1])
        right_tail.merge(self._cms(parts[2]))
        right = self._cms(parts[0])
        right.merge(right_tail)
        assert left.snapshot() == right.snapshot()

    def _bloom(self, members):
        bloom = BloomFilter(capacity=128, error_rate=0.01, seed=5)
        bloom.update(members)
        return bloom

    def test_bloom_merge_is_associative(self):
        parts = [["a", "b"], ["b", "c"], ["d"]]
        left = self._bloom(parts[0])
        left.merge(self._bloom(parts[1]))
        left.merge(self._bloom(parts[2]))
        right_tail = self._bloom(parts[1])
        right_tail.merge(self._bloom(parts[2]))
        right = self._bloom(parts[0])
        right.merge(right_tail)
        assert left.snapshot() == right.snapshot()
        for member in ("a", "b", "c", "d"):
            assert member in left

    def test_countmin_merge_rejects_mismatched_shape(self):
        with pytest.raises(ValueError):
            CountMinSketch(width=64, depth=4).merge(
                CountMinSketch(width=32, depth=4)
            )

    def test_bloom_merge_rejects_mismatched_shape(self):
        with pytest.raises(ValueError):
            BloomFilter(capacity=64, error_rate=0.01).merge(
                BloomFilter(capacity=128, error_rate=0.01)
            )


class TestSnapshotRoundTrips:
    def test_countmin_round_trip(self):
        sketch = CountMinSketch(width=32, depth=3, seed=7)
        for i in range(50):
            sketch.add(f"key-{i % 9}")
        restored = CountMinSketch.from_snapshot(sketch.snapshot())
        assert restored.snapshot() == sketch.snapshot()
        restored.add("key-0")
        sketch.add("key-0")
        assert restored.estimate("key-0") == sketch.estimate("key-0")

    def test_bloom_round_trip(self):
        bloom = BloomFilter(capacity=64, error_rate=0.02, seed=7)
        bloom.update(["x", "y", "z"])
        restored = BloomFilter.from_snapshot(bloom.snapshot())
        assert restored.snapshot() == bloom.snapshot()
        assert "x" in restored and "q" not in restored

    def test_countmin_restore_rejects_wrong_shape(self):
        sketch = CountMinSketch(width=32, depth=3, seed=7)
        state = sketch.snapshot()
        other = CountMinSketch(width=64, depth=3, seed=7)
        with pytest.raises(ValueError):
            other.restore(state)

    def test_tier_round_trip_continues_identically(self):
        def feed(tier, start, count):
            results = []
            for i in range(start, start + count):
                timestamp = float(i % 400) + (i // 400) * 400.0
                results.append(
                    tier.admit(timestamp, f"a{i % 13}", f"b{i % 7}")
                )
            return results

        original = SketchTier(
            window_horizon=200.0, promote_support=3, width=128, depth=3
        )
        feed(original, 0, 300)
        restored = SketchTier.from_snapshot(original.snapshot())
        assert restored.snapshot() == original.snapshot()
        assert feed(original, 300, 300) == feed(restored, 300, 300)
        assert restored.snapshot() == original.snapshot()
