"""Tests for the Bloom filter."""

import pytest

from repro.sketches.bloom import BloomFilter


class TestBloomFilter:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            BloomFilter(0)
        with pytest.raises(ValueError):
            BloomFilter(10, error_rate=0.0)
        with pytest.raises(ValueError):
            BloomFilter(10, error_rate=1.0)

    def test_no_false_negatives(self):
        bloom = BloomFilter(capacity=100)
        keys = [f"key-{i}" for i in range(100)]
        bloom.update(keys)
        assert all(key in bloom for key in keys)

    def test_unseen_keys_mostly_absent(self):
        bloom = BloomFilter(capacity=500, error_rate=0.01)
        bloom.update(f"present-{i}" for i in range(500))
        false_positives = sum(
            1 for i in range(1000) if f"absent-{i}" in bloom
        )
        # 1% nominal error rate: allow generous slack but not gross failure.
        assert false_positives < 60

    def test_empty_filter_contains_nothing(self):
        bloom = BloomFilter(capacity=10)
        assert "anything" not in bloom

    def test_len_counts_insertions(self):
        bloom = BloomFilter(capacity=10)
        bloom.add("a")
        bloom.add("a")
        assert len(bloom) == 2

    def test_estimated_false_positive_rate_grows_with_fill(self):
        bloom = BloomFilter(capacity=50)
        assert bloom.estimated_false_positive_rate() == 0.0
        bloom.update(f"k{i}" for i in range(50))
        half_full = bloom.estimated_false_positive_rate()
        bloom.update(f"m{i}" for i in range(200))
        assert bloom.estimated_false_positive_rate() > half_full

    def test_size_and_hash_count_are_positive(self):
        bloom = BloomFilter(capacity=10)
        assert bloom.size > 0
        assert bloom.hash_count > 0
