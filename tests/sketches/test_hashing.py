"""Tests for the deterministic hash family."""

import pytest

from repro.sketches.hashing import HashFamily


class TestHashFamily:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            HashFamily(0)
        with pytest.raises(ValueError):
            HashFamily(2, seed=-1)

    def test_hash_is_deterministic(self):
        family = HashFamily(3, seed=5)
        assert family.hash("key", 0) == family.hash("key", 0)

    def test_different_functions_differ(self):
        family = HashFamily(4)
        values = {family.hash("key", i) for i in range(4)}
        assert len(values) == 4

    def test_different_seeds_differ(self):
        assert HashFamily(1, seed=1).hash("key", 0) != HashFamily(1, seed=2).hash("key", 0)

    def test_different_keys_differ(self):
        family = HashFamily(1)
        assert family.hash("a", 0) != family.hash("b", 0)

    def test_hashes_returns_one_value_per_function(self):
        family = HashFamily(5)
        assert len(family.hashes("key")) == 5

    def test_index_out_of_range(self):
        family = HashFamily(2)
        with pytest.raises(IndexError):
            family.hash("key", 2)

    def test_values_are_non_negative_integers(self):
        family = HashFamily(3)
        for value in family.hashes("anything"):
            assert isinstance(value, int)
            assert value >= 0
