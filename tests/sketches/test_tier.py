"""Unit tests for the sketch admission tier (Count-Min + Bloom front)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sketches.tier import SketchTier


def make_tier(promote_support=3, horizon=100.0, **kwargs):
    kwargs.setdefault("width", 256)
    kwargs.setdefault("depth", 4)
    return SketchTier(
        window_horizon=horizon, promote_support=promote_support, **kwargs
    )


class TestAdmission:
    def test_cold_pair_is_filtered(self):
        tier = make_tier(promote_support=3)
        assert tier.admit(0.0, "a", "b") == 0
        assert tier.filtered == 1
        assert tier.promotions == 0

    def test_crossing_pair_promotes_with_backfill_weight(self):
        tier = make_tier(promote_support=3)
        assert tier.admit(0.0, "a", "b") == 0
        assert tier.admit(1.0, "a", "b") == 0
        # Third occurrence: sketched support reaches 3 -> promote with
        # the back-fill weight K.
        assert tier.admit(2.0, "a", "b") == 3
        assert tier.promotions == 1
        # Every later occurrence is admitted at weight 1.
        assert tier.admit(3.0, "a", "b") == 1
        assert tier.admissions == 1

    def test_distinct_pairs_do_not_interfere(self):
        tier = make_tier(promote_support=2)
        assert tier.admit(0.0, "a", "b") == 0
        assert tier.admit(0.0, "c", "d") == 0
        assert tier.admit(1.0, "a", "b") == 2
        assert tier.admit(1.0, "c", "d") == 2

    def test_epoch_rotation_forgets_stale_support(self):
        tier = make_tier(promote_support=2, horizon=100.0)
        assert tier.admit(0.0, "a", "b") == 0
        # Two full epochs later both the current and the previous sketch
        # of the first occurrence are gone: the pair starts cold again.
        assert tier.admit(250.0, "a", "b") == 0
        assert tier.admit(260.0, "a", "b") == 2

    def test_support_spans_adjacent_epochs(self):
        tier = make_tier(promote_support=2, horizon=100.0)
        assert tier.admit(90.0, "a", "b") == 0
        # Next epoch: the previous epoch's occurrence still counts.
        assert tier.admit(110.0, "a", "b") == 2

    def test_rejects_time_going_backwards(self):
        tier = make_tier()
        tier.admit(150.0, "a", "b")
        with pytest.raises(ValueError):
            tier.admit(10.0, "a", "b")

    def test_rejects_negative_timestamp(self):
        tier = make_tier()
        with pytest.raises(ValueError):
            tier.admit(-1.0, "a", "b")


class TestFilterPairs:
    class Pair:
        def __init__(self, first, second):
            self.first = first
            self.second = second

    def test_replicates_backfill_weight(self):
        tier = make_tier(promote_support=3)
        pair = self.Pair("a", "b")
        assert tier.filter_pairs(0.0, [pair]) == ()
        assert tier.filter_pairs(1.0, [pair]) == ()
        assert tier.filter_pairs(2.0, [pair]) == (pair, pair, pair)
        assert tier.filter_pairs(3.0, [pair]) == (pair,)

    def test_accepts_plain_tuples(self):
        tier = make_tier(promote_support=2)
        assert tier.filter_pairs(0.0, [("a", "b")]) == ()
        assert tier.filter_pairs(1.0, [("a", "b")]) == (("a", "b"), ("a", "b"))


class TestIntrospection:
    def test_counters_and_occupancy(self):
        tier = make_tier(promote_support=2)
        tier.admit(0.0, "a", "b")
        tier.admit(0.0, "c", "d")
        tier.admit(1.0, "a", "b")
        assert tier.tracked_keys == 2
        assert tier.sketched_total >= 1
        assert tier.error_bound >= 0.0

    def test_estimated_support_unknown_pair_is_zero(self):
        tier = make_tier()
        tier.admit(0.0, "a", "b")
        assert tier.estimated_support("x", "y") == 0


class TestTierOverestimateInvariant:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=6),
                st.integers(min_value=0, max_value=99),
            ),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_sketched_support_never_undercounts(self, raw):
        # Timestamps sorted non-decreasing, all within one epoch: the
        # tier's sketched support must be >= true - 1 for every pair
        # (the first occurrence is absorbed by the Bloom filter only;
        # hashing collisions and Bloom false positives only inflate).
        events = sorted(
            (float(ts), f"a{pair_id}", f"b{pair_id}")
            for pair_id, ts in raw
        )
        tier = make_tier(promote_support=1000, horizon=100.0)
        true = {}
        for timestamp, first, second in events:
            tier.admit(timestamp, first, second)
            true[(first, second)] = true.get((first, second), 0) + 1
        for (first, second), count in true.items():
            assert tier.estimated_support(first, second) >= count - 1


class TestTierSnapshot:
    def test_restore_rejects_parameter_mismatch(self):
        tier = make_tier(promote_support=3)
        state = tier.snapshot()
        other = make_tier(promote_support=4)
        with pytest.raises(ValueError):
            other.restore(state)
