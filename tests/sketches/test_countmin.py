"""Tests for the Count-Min sketch and its windowed variant."""

import pytest

from repro.sketches.countmin import CountMinSketch, WindowedCountMinSketch


class TestCountMinSketch:
    def test_requires_dimensions_or_bounds(self):
        with pytest.raises(ValueError):
            CountMinSketch()

    def test_dimensions_from_error_bounds(self):
        sketch = CountMinSketch(epsilon=0.01, delta=0.01)
        assert sketch.width >= 100
        assert sketch.depth >= 4

    def test_rejects_invalid_bounds(self):
        with pytest.raises(ValueError):
            CountMinSketch(epsilon=1.5, delta=0.1)

    def test_estimate_never_underestimates(self):
        sketch = CountMinSketch(width=64, depth=4)
        for i in range(200):
            sketch.add(f"key-{i % 20}")
        for i in range(20):
            assert sketch.estimate(f"key-{i}") >= 10

    def test_exact_when_sparse(self):
        sketch = CountMinSketch(width=1024, depth=5)
        sketch.add("a", 3)
        sketch.add("b", 7)
        assert sketch.estimate("a") == 3
        assert sketch.estimate("b") == 7

    def test_unseen_key_can_only_be_overestimated(self):
        sketch = CountMinSketch(width=1024, depth=5)
        sketch.add("a", 3)
        assert sketch.estimate("zzz") >= 0

    def test_total_tracks_added_weight(self):
        sketch = CountMinSketch(width=16, depth=2)
        sketch.add("a", 3)
        sketch.add("b", 4)
        assert sketch.total == 7

    def test_negative_count_rejected(self):
        sketch = CountMinSketch(width=16, depth=2)
        with pytest.raises(ValueError):
            sketch.add("a", -1)

    def test_merge_adds_counts(self):
        first = CountMinSketch(width=64, depth=4, seed=1)
        second = CountMinSketch(width=64, depth=4, seed=1)
        first.add("a", 2)
        second.add("a", 3)
        first.merge(second)
        assert first.estimate("a") == 5
        assert first.total == 5

    def test_merge_requires_matching_dimensions(self):
        first = CountMinSketch(width=64, depth=4)
        second = CountMinSketch(width=32, depth=4)
        with pytest.raises(ValueError):
            first.merge(second)

    def test_merge_requires_matching_seed(self):
        first = CountMinSketch(width=64, depth=4, seed=1)
        second = CountMinSketch(width=64, depth=4, seed=2)
        with pytest.raises(ValueError):
            first.merge(second)


class TestWindowedCountMinSketch:
    def test_counts_within_window(self):
        sketch = WindowedCountMinSketch(horizon=100.0, panes=4)
        sketch.add(0.0, "a")
        sketch.add(10.0, "a")
        assert sketch.estimate("a") >= 2

    def test_old_panes_expire(self):
        sketch = WindowedCountMinSketch(horizon=100.0, panes=4)
        sketch.add(0.0, "a")
        sketch.advance_to(500.0)
        assert sketch.estimate("a") == 0

    def test_partial_expiry_keeps_recent_panes(self):
        sketch = WindowedCountMinSketch(horizon=100.0, panes=4)
        sketch.add(0.0, "a")
        sketch.add(90.0, "a")
        sketch.advance_to(120.0)
        # The pane containing t=0 is gone, the pane containing t=90 is live.
        assert sketch.estimate("a") == 1

    def test_rejects_time_going_backwards(self):
        sketch = WindowedCountMinSketch(horizon=100.0, panes=4)
        sketch.add(50.0, "a")
        with pytest.raises(ValueError):
            sketch.add(10.0, "a")

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            WindowedCountMinSketch(horizon=0.0)
        with pytest.raises(ValueError):
            WindowedCountMinSketch(horizon=10.0, panes=0)

    def test_rejects_negative_timestamp(self):
        sketch = WindowedCountMinSketch(horizon=10.0)
        with pytest.raises(ValueError):
            sketch.add(-1.0, "a")
