"""Tests for reservoir sampling."""

import pytest

from repro.sketches.sampling import ReservoirSample


class TestReservoirSample:
    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            ReservoirSample(0)

    def test_keeps_everything_under_capacity(self):
        sample = ReservoirSample(10, seed=1)
        for i in range(5):
            sample.add(i)
        assert sorted(sample.items()) == [0, 1, 2, 3, 4]

    def test_never_exceeds_capacity(self):
        sample = ReservoirSample(10, seed=1)
        for i in range(1000):
            sample.add(i)
        assert len(sample) == 10
        assert sample.seen == 1000

    def test_sample_items_come_from_stream(self):
        sample = ReservoirSample(5, seed=2)
        for i in range(100):
            sample.add(i)
        assert all(0 <= item < 100 for item in sample.items())

    def test_deterministic_for_fixed_seed(self):
        def run():
            sample = ReservoirSample(5, seed=42)
            for i in range(200):
                sample.add(i)
            return sample.items()

        assert run() == run()

    def test_roughly_uniform_inclusion(self):
        # Each item of a 100-element stream should be kept ~10% of the time
        # with capacity 10.  Averaged over many runs the early and late halves
        # should be included about equally often.
        early_hits = 0
        late_hits = 0
        for seed in range(200):
            sample = ReservoirSample(10, seed=seed)
            for i in range(100):
                sample.add(i)
            for item in sample.items():
                if item < 50:
                    early_hits += 1
                else:
                    late_hits += 1
        ratio = early_hits / late_hits
        assert 0.8 < ratio < 1.25

    def test_items_returns_copy(self):
        sample = ReservoirSample(5, seed=1)
        sample.add("x")
        items = sample.items()
        items.append("y")
        assert len(sample) == 1
