"""Tests for the operator DAG and operator sharing."""

import pytest

from repro.streams.dag import OperatorDAG
from repro.streams.operators import CollectorSink, Operator, StatisticsOperator


class TestEdges:
    def test_connect_creates_edge_and_wires_operators(self):
        dag = OperatorDAG()
        a, b = Operator("a"), CollectorSink("b")
        dag.connect(a, b)
        assert (a, b) in dag.edges
        assert b in a.consumers

    def test_duplicate_edges_are_ignored(self):
        dag = OperatorDAG()
        a, b = Operator("a"), CollectorSink("b")
        dag.connect(a, b)
        dag.connect(a, b)
        assert len(dag.edges) == 1

    def test_cycle_is_rejected(self):
        dag = OperatorDAG()
        a, b, c = Operator("a"), Operator("b"), Operator("c")
        dag.connect(a, b)
        dag.connect(b, c)
        with pytest.raises(ValueError):
            dag.connect(c, a)

    def test_self_loop_is_rejected(self):
        dag = OperatorDAG()
        a = Operator("a")
        with pytest.raises(ValueError):
            dag.connect(a, a)

    def test_chain_connects_in_sequence(self):
        dag = OperatorDAG()
        a, b, c = Operator("a"), Operator("b"), CollectorSink("c")
        last = dag.chain(a, b, c)
        assert last is c
        assert (a, b) in dag.edges
        assert (b, c) in dag.edges


class TestStructure:
    def test_sources_and_sinks(self):
        dag = OperatorDAG()
        a, b, c = Operator("a"), Operator("b"), CollectorSink("c")
        dag.chain(a, b, c)
        assert dag.sources() == [a]
        assert dag.sinks() == [c]

    def test_topological_order_respects_edges(self):
        dag = OperatorDAG()
        a, b, c = Operator("a"), Operator("b"), Operator("c")
        dag.connect(a, b)
        dag.connect(b, c)
        order = dag.topological_order()
        assert order.index(a) < order.index(b) < order.index(c)

    def test_describe_mentions_edges(self):
        dag = OperatorDAG("demo")
        a, b = Operator("upstream"), CollectorSink("downstream")
        dag.connect(a, b)
        description = dag.describe()
        assert "upstream" in description
        assert "downstream" in description


class TestSharing:
    def test_shared_returns_same_instance_for_same_key(self):
        dag = OperatorDAG()
        first = dag.shared("stats", StatisticsOperator)
        second = dag.shared("stats", StatisticsOperator)
        assert first is second
        assert dag.is_shared(first)

    def test_shared_operators_with_different_keys_differ(self):
        dag = OperatorDAG()
        first = dag.shared("stats-a", StatisticsOperator)
        second = dag.shared("stats-b", StatisticsOperator)
        assert first is not second
        assert set(dag.shared_keys) == {"stats-a", "stats-b"}

    def test_non_registered_operator_is_not_shared(self):
        dag = OperatorDAG()
        op = Operator()
        dag.add(op)
        assert not dag.is_shared(op)
