"""Tests for the synopsis (sketching/sampling/throttling) operators."""

import pytest

from repro.streams.item import StreamItem
from repro.streams.operators import CollectorSink
from repro.streams.synopses import SamplingOperator, SketchingOperator, ThrottleOperator


def item(i, tags, t=None):
    return StreamItem(timestamp=float(t if t is not None else i),
                      doc_id=f"d{i}", tags=frozenset(tags))


class TestSketchingOperator:
    def test_passes_items_through_unchanged(self):
        operator = SketchingOperator(horizon=100.0)
        sink = CollectorSink()
        operator.connect(sink)
        original = item(1, {"a"})
        operator.push(original)
        assert sink.items == [original]
        assert operator.items_sketched == 1

    def test_estimates_windowed_tag_counts(self):
        operator = SketchingOperator(horizon=1000.0)
        for i in range(20):
            operator.push(item(i, {"hot", f"rare{i}"}))
        assert operator.estimate("hot") >= 20
        assert operator.estimate("rare3") >= 1
        assert operator.estimate("unknown") >= 0

    def test_old_counts_expire_with_the_window(self):
        operator = SketchingOperator(horizon=10.0, panes=2)
        operator.push(item(1, {"old"}, t=0.0))
        operator.push(item(2, {"new"}, t=100.0))
        assert operator.estimate("old") == 0
        assert operator.estimate("new") >= 1

    def test_pair_estimates_when_enabled(self):
        operator = SketchingOperator(horizon=1000.0, track_pairs=True)
        for i in range(5):
            operator.push(item(i, {"a", "b"}))
        assert operator.estimate_pair("a", "b") >= 5
        assert operator.estimate_pair("b", "a") >= 5

    def test_pair_estimates_rejected_when_disabled(self):
        operator = SketchingOperator(horizon=100.0, track_pairs=False)
        with pytest.raises(RuntimeError):
            operator.estimate_pair("a", "b")

    def test_heavy_hitters_filters_and_sorts(self):
        operator = SketchingOperator(horizon=1000.0)
        for i in range(30):
            tags = {"heavy"} if i % 2 == 0 else {"heavy", "medium"}
            operator.push(item(i, tags))
        hitters = operator.heavy_hitters(["heavy", "medium", "absent"], threshold=5)
        assert [tag for tag, _ in hitters] == ["heavy", "medium"]

    def test_entities_included_in_sketch(self):
        operator = SketchingOperator(horizon=1000.0)
        operator.push(StreamItem(timestamp=1.0, doc_id="d", tags=frozenset({"news"}),
                                 entities=frozenset({"Athens"})))
        assert operator.estimate("Athens") >= 1


class TestSamplingOperator:
    def test_passes_items_through(self):
        operator = SamplingOperator(capacity=4)
        sink = CollectorSink()
        operator.connect(sink)
        for i in range(10):
            operator.push(item(i, {"a"}))
        assert len(sink.items) == 10
        assert operator.seen == 10
        assert len(operator.sample()) == 4

    def test_sample_with_tag(self):
        operator = SamplingOperator(capacity=100, seed=1)
        for i in range(20):
            operator.push(item(i, {"a"} if i % 2 == 0 else {"b"}))
        assert all("a" in s.tags for s in operator.sample_with_tag("a"))

    def test_estimated_tag_fraction(self):
        operator = SamplingOperator(capacity=200, seed=2)
        for i in range(100):
            operator.push(item(i, {"common"} if i < 80 else {"rare"}))
        assert operator.estimated_tag_fraction("common") == pytest.approx(0.8, abs=0.05)
        assert SamplingOperator(capacity=10).estimated_tag_fraction("x") == 0.0


class TestThrottleOperator:
    def test_keeps_one_in_n(self):
        operator = ThrottleOperator(keep_one_in=3)
        sink = CollectorSink()
        operator.connect(sink)
        for i in range(9):
            operator.push(item(i, {"a"}))
        assert len(sink.items) == 3
        assert operator.shed == 6

    def test_keep_one_in_one_forwards_everything(self):
        operator = ThrottleOperator(keep_one_in=1)
        sink = CollectorSink()
        operator.connect(sink)
        for i in range(5):
            operator.push(item(i, {"a"}))
        assert len(sink.items) == 5
        assert operator.shed == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ThrottleOperator(keep_one_in=0)
