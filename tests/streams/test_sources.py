"""Tests for the data-source wrappers."""

import pytest

from repro.datasets.documents import Document
from repro.streams.item import StreamItem
from repro.streams.operators import CollectorSink
from repro.streams.sources import (
    DocumentStreamSource,
    IterableSource,
    MergedSource,
)


def items(timestamps, prefix="d"):
    return [
        StreamItem(timestamp=float(t), doc_id=f"{prefix}{i}", tags={"t"})
        for i, t in enumerate(timestamps)
    ]


class TestIterableSource:
    def test_run_pushes_all_items(self):
        source = IterableSource(items([1, 2, 3]))
        sink = CollectorSink()
        source.connect(sink)
        emitted = source.run()
        assert emitted == 3
        assert len(sink.items) == 3

    def test_limit_caps_emission(self):
        source = IterableSource(items([1, 2, 3, 4]))
        sink = CollectorSink()
        source.connect(sink)
        assert source.run(limit=2) == 2
        assert len(sink.items) == 2

    def test_out_of_order_items_are_rejected(self):
        source = IterableSource(items([5, 3]))
        sink = CollectorSink()
        source.connect(sink)
        with pytest.raises(ValueError):
            source.run()

    def test_clock_follows_stream_time(self):
        source = IterableSource(items([1, 7]))
        source.connect(CollectorSink())
        source.run()
        assert source.clock.now() == 7.0

    def test_source_cannot_receive_pushes(self):
        source = IterableSource([])
        with pytest.raises(TypeError):
            source.push(items([1])[0])


class TestDocumentStreamSource:
    def test_adapts_dataset_documents(self):
        documents = [
            Document(timestamp=1.0, doc_id="n1", tags={"a"}, text="hello"),
            Document(timestamp=2.0, doc_id="n2", tags={"b"}),
        ]
        source = DocumentStreamSource(documents, source_name="nyt")
        sink = CollectorSink()
        source.connect(sink)
        source.run()
        assert [item.doc_id for item in sink.items] == ["n1", "n2"]
        assert sink.items[0].source == "nyt"
        assert sink.items[0].text == "hello"

    def test_custom_adapter(self):
        documents = [Document(timestamp=1.0, doc_id="n1", tags={"a"})]
        source = DocumentStreamSource(
            documents,
            adapter=lambda doc: StreamItem(
                timestamp=doc.timestamp, doc_id=doc.doc_id.upper(), tags=doc.tags
            ),
        )
        sink = CollectorSink()
        source.connect(sink)
        source.run()
        assert sink.items[0].doc_id == "N1"


class TestMergedSource:
    def test_merges_by_timestamp(self):
        first = IterableSource(items([1, 4], prefix="a"))
        second = IterableSource(items([2, 3], prefix="b"))
        merged = MergedSource([first, second])
        sink = CollectorSink()
        merged.connect(sink)
        merged.run()
        assert [item.timestamp for item in sink.items] == [1.0, 2.0, 3.0, 4.0]

    def test_requires_at_least_one_source(self):
        with pytest.raises(ValueError):
            MergedSource([])

    def test_single_source_passthrough(self):
        merged = MergedSource([IterableSource(items([1, 2]))])
        sink = CollectorSink()
        merged.connect(sink)
        assert merged.run() == 2
