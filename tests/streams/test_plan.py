"""Tests for query plans and the multi-plan executor."""

import pytest

from repro.streams.dag import OperatorDAG
from repro.streams.item import StreamItem
from repro.streams.operators import CollectorSink, StatisticsOperator, TagNormalizerOperator
from repro.streams.plan import PlanExecutor, QueryPlan
from repro.streams.sources import IterableSource


def items(n=5):
    return [
        StreamItem(timestamp=float(i), doc_id=f"d{i}", tags={"A", "b"})
        for i in range(n)
    ]


class TestQueryPlan:
    def test_nodes_in_processing_order(self):
        source = IterableSource(items())
        normalizer = TagNormalizerOperator()
        sink = CollectorSink()
        plan = QueryPlan("p", source, [normalizer], sink)
        assert plan.nodes() == [source, normalizer, sink]

    def test_requires_name(self):
        with pytest.raises(ValueError):
            QueryPlan("", IterableSource(items()))


class TestPlanExecutor:
    def test_single_plan_runs_end_to_end(self):
        executor = PlanExecutor()
        source = IterableSource(items(4))
        sink = CollectorSink()
        executor.register(QueryPlan("p", source, [TagNormalizerOperator()], sink))
        emitted = executor.run()
        assert emitted == 4
        assert len(sink.items) == 4
        assert sink.items[0].tags == frozenset({"a", "b"})

    def test_duplicate_plan_names_rejected(self):
        executor = PlanExecutor()
        source = IterableSource(items())
        executor.register(QueryPlan("p", source, [], CollectorSink()))
        with pytest.raises(ValueError):
            executor.register(QueryPlan("p", source, [], CollectorSink()))

    def test_plan_needs_at_least_two_nodes(self):
        executor = PlanExecutor()
        with pytest.raises(ValueError):
            executor.register(QueryPlan("p", IterableSource(items())))

    def test_run_without_plans_rejected(self):
        with pytest.raises(ValueError):
            PlanExecutor().run()

    def test_shared_source_is_replayed_once_for_two_plans(self):
        executor = PlanExecutor()
        source = IterableSource(items(6))
        stats = executor.shared_operator("stats", StatisticsOperator)
        sink_a, sink_b = CollectorSink("a"), CollectorSink("b")
        executor.register(QueryPlan("plan-a", source, [stats], sink_a))
        executor.register(QueryPlan("plan-b", source, [stats], sink_b))
        emitted = executor.run()
        # The source is replayed once...
        assert emitted == 6
        # ...the shared operator sees each document once...
        assert stats.documents == 6
        # ...and both plans' sinks receive the full stream.
        assert len(sink_a.items) == 6
        assert len(sink_b.items) == 6

    def test_unshared_plans_have_independent_operators(self):
        executor = PlanExecutor()
        source = IterableSource(items(3))
        stats_a, stats_b = StatisticsOperator("sa"), StatisticsOperator("sb")
        executor.register(QueryPlan("plan-a", source, [stats_a], CollectorSink()))
        executor.register(QueryPlan("plan-b", source, [stats_b], CollectorSink()))
        executor.run()
        assert stats_a.documents == 3
        assert stats_b.documents == 3

    def test_describe_lists_plans(self):
        executor = PlanExecutor(OperatorDAG("test"))
        source = IterableSource(items())
        executor.register(QueryPlan("my-plan", source, [], CollectorSink()))
        assert "my-plan" in executor.describe()
