"""Tests for the push-based stream operators."""

import pytest

from repro.streams.item import StreamItem
from repro.streams.operators import (
    CollectorSink,
    FilterOperator,
    FunctionSink,
    MapOperator,
    Operator,
    StatisticsOperator,
    TagNormalizerOperator,
)


def make_item(i=0, tags=("a",), text=""):
    return StreamItem(timestamp=float(i), doc_id=f"d{i}", tags=frozenset(tags), text=text)


class TestOperatorWiring:
    def test_connect_builds_fan_out(self):
        op = Operator("op")
        first, second = CollectorSink("s1"), CollectorSink("s2")
        op.connect(first)
        op.connect(second)
        op.push(make_item())
        assert len(first.items) == 1
        assert len(second.items) == 1

    def test_connect_is_idempotent(self):
        op = Operator()
        sink = CollectorSink()
        op.connect(sink)
        op.connect(sink)
        op.push(make_item())
        assert len(sink.items) == 1

    def test_operator_cannot_consume_itself(self):
        op = Operator()
        with pytest.raises(ValueError):
            op.connect(op)

    def test_sink_cannot_have_consumers(self):
        sink = CollectorSink()
        with pytest.raises(TypeError):
            sink.connect(Operator())

    def test_counters_track_in_and_out(self):
        op = Operator()
        sink = CollectorSink()
        op.connect(sink)
        op.push(make_item(1))
        op.push(make_item(2))
        assert op.items_in == 2
        assert op.items_out == 2
        assert sink.items_in == 2

    def test_flush_propagates_to_sinks(self):
        flushed = []
        sink = FunctionSink(lambda item: None, on_flush=lambda: flushed.append(True))
        op = Operator()
        op.connect(sink)
        op.flush()
        assert flushed == [True]


class TestMapOperator:
    def test_applies_function(self):
        mapper = MapOperator(lambda item: item.with_tags(["extra"]))
        sink = CollectorSink()
        mapper.connect(sink)
        mapper.push(make_item(tags=("a",)))
        assert sink.items[0].tags == frozenset({"a", "extra"})


class TestFilterOperator:
    def test_forwards_matching_items_only(self):
        keep_even = FilterOperator(lambda item: int(item.timestamp) % 2 == 0)
        sink = CollectorSink()
        keep_even.connect(sink)
        for i in range(4):
            keep_even.push(make_item(i))
        assert [item.timestamp for item in sink.items] == [0.0, 2.0]
        assert keep_even.dropped == 2


class TestTagNormalizer:
    def test_lowercases_and_strips(self):
        normalizer = TagNormalizerOperator()
        sink = CollectorSink()
        normalizer.connect(sink)
        normalizer.push(make_item(tags=("  Politics ", "SPORTS")))
        assert sink.items[0].tags == frozenset({"politics", "sports"})

    def test_drops_empty_tags(self):
        normalizer = TagNormalizerOperator()
        sink = CollectorSink()
        normalizer.connect(sink)
        normalizer.push(make_item(tags=("  ", "a")))
        assert sink.items[0].tags == frozenset({"a"})

    def test_passes_through_already_normalised_items(self):
        normalizer = TagNormalizerOperator()
        sink = CollectorSink()
        normalizer.connect(sink)
        original = make_item(tags=("a", "b"))
        normalizer.push(original)
        assert sink.items[0] is original


class TestStatisticsOperator:
    def test_collects_counts(self):
        stats = StatisticsOperator()
        sink = CollectorSink()
        stats.connect(sink)
        stats.push(make_item(0, tags=("a", "b")))
        stats.push(make_item(5, tags=("a",)))
        summary = stats.summary()
        assert summary["documents"] == 2
        assert summary["distinct_tags"] == 2
        assert summary["mean_tags_per_document"] == pytest.approx(1.5)
        assert summary["first_timestamp"] == 0.0
        assert summary["last_timestamp"] == 5.0

    def test_passes_items_through_unchanged(self):
        stats = StatisticsOperator()
        sink = CollectorSink()
        stats.connect(sink)
        item = make_item()
        stats.push(item)
        assert sink.items == [item]

    def test_empty_statistics(self):
        stats = StatisticsOperator()
        assert stats.mean_tags_per_document == 0.0
        assert stats.distinct_tags == 0


class TestFunctionSink:
    def test_invokes_callback_per_item(self):
        received = []
        sink = FunctionSink(received.append)
        sink.push(make_item(1))
        sink.push(make_item(2))
        assert len(received) == 2
