"""Tests for the stream tuple."""

import pytest

from repro.streams.item import StreamItem


class TestStreamItem:
    def test_basic_construction(self):
        item = StreamItem(timestamp=1.0, doc_id="d1", tags={"a", "b"})
        assert item.timestamp == 1.0
        assert item.doc_id == "d1"
        assert item.tags == frozenset({"a", "b"})
        assert item.entities == frozenset()

    def test_tags_are_normalised_to_frozensets(self):
        item = StreamItem(timestamp=1.0, doc_id="d1", tags=["a", "a", "b"])
        assert isinstance(item.tags, frozenset)
        assert item.tags == frozenset({"a", "b"})

    def test_rejects_negative_timestamp(self):
        with pytest.raises(ValueError):
            StreamItem(timestamp=-1.0, doc_id="d1")

    def test_rejects_empty_doc_id(self):
        with pytest.raises(ValueError):
            StreamItem(timestamp=1.0, doc_id="")

    def test_all_tags_unions_tags_and_entities(self):
        item = StreamItem(
            timestamp=1.0, doc_id="d1", tags={"a"}, entities={"Barack Obama"}
        )
        assert item.all_tags == frozenset({"a", "Barack Obama"})

    def test_with_entities_adds_without_mutation(self):
        item = StreamItem(timestamp=1.0, doc_id="d1", tags={"a"})
        enriched = item.with_entities(["Athens"])
        assert enriched.entities == frozenset({"Athens"})
        assert item.entities == frozenset()
        assert enriched.tags == item.tags

    def test_with_tags_adds_tags(self):
        item = StreamItem(timestamp=1.0, doc_id="d1", tags={"a"})
        assert item.with_tags(["b"]).tags == frozenset({"a", "b"})

    def test_with_metadata_merges(self):
        item = StreamItem(timestamp=1.0, doc_id="d1", metadata={"x": 1})
        updated = item.with_metadata(y=2)
        assert updated.metadata == {"x": 1, "y": 2}
        assert item.metadata == {"x": 1}

    def test_items_with_same_fields_are_equal(self):
        a = StreamItem(timestamp=1.0, doc_id="d1", tags={"a"})
        b = StreamItem(timestamp=1.0, doc_id="d1", tags={"a"})
        assert a == b
