"""Tests for the batch push protocol through operators, sources and plans."""

import pytest

from repro.streams.item import StreamItem
from repro.streams.operators import (
    CollectorSink,
    FilterOperator,
    FunctionSink,
    MapOperator,
    Operator,
    TagNormalizerOperator,
)
from repro.streams.plan import PlanExecutor, QueryPlan
from repro.streams.sources import IterableSource


def item(t, tags=("a",), doc_id=None):
    return StreamItem(timestamp=float(t), doc_id=doc_id or f"d{t}",
                      tags=frozenset(tags))


def items(n):
    return [item(i) for i in range(n)]


class TestOperatorBatches:
    def test_push_batch_equals_item_by_item_push(self):
        for push_batches in (False, True):
            head = TagNormalizerOperator()
            collector = CollectorSink()
            head.connect(collector)
            stream = [item(0, ["A", "b "]), item(1, ["c"]), item(2, ["D"])]
            if push_batches:
                head.push_batch(stream)
            else:
                for one in stream:
                    head.push(one)
            assert [sorted(i.tags) for i in collector.items] == [
                ["a", "b"], ["c"], ["d"]]
            assert head.items_in == 3
            assert head.items_out == 3

    def test_filter_drops_inside_batches(self):
        keep_even = FilterOperator(lambda i: int(i.timestamp) % 2 == 0)
        collector = CollectorSink()
        keep_even.connect(collector)
        keep_even.push_batch(items(5))
        assert [i.timestamp for i in collector.items] == [0.0, 2.0, 4.0]
        assert keep_even.dropped == 2

    def test_empty_result_batch_not_forwarded(self):
        drop_all = FilterOperator(lambda i: False)
        downstream = CollectorSink()
        drop_all.connect(downstream)
        drop_all.push_batch(items(3))
        assert downstream.items == []
        assert downstream.items_in == 0

    def test_batches_flow_through_operator_chains(self):
        double = MapOperator(lambda i: i.with_tags(["extra"]))
        normalizer = TagNormalizerOperator()
        collector = CollectorSink()
        double.connect(normalizer)
        normalizer.connect(collector)
        double.push_batch(items(4))
        assert len(collector.items) == 4
        assert all("extra" in i.tags for i in collector.items)

    def test_batch_fans_out_to_every_consumer(self):
        head = Operator()
        first, second = CollectorSink(), CollectorSink()
        head.connect(first)
        head.connect(second)
        head.push_batch(items(3))
        assert len(first.items) == len(second.items) == 3


class TestSinkBatches:
    def test_default_consume_batch_falls_back_to_consume(self):
        collector = CollectorSink()
        collector.push_batch(items(3))
        assert len(collector.items) == 3
        assert collector.items_in == 3

    def test_function_sink_batch_callback(self):
        received = []
        singles = []
        sink = FunctionSink(singles.append, batch_callback=received.append)
        sink.push_batch(items(2))
        sink.push(item(5))
        assert len(received) == 1 and len(received[0]) == 2
        assert [i.timestamp for i in singles] == [5.0]

    def test_function_sink_without_batch_callback_loops(self):
        singles = []
        sink = FunctionSink(singles.append)
        sink.push_batch(items(3))
        assert [i.timestamp for i in singles] == [0.0, 1.0, 2.0]


class TestSourceBatches:
    def test_run_with_batch_size_emits_everything_in_order(self):
        source = IterableSource(items(10))
        collector = CollectorSink()
        source.connect(collector)
        emitted = source.run(batch_size=3)
        assert emitted == 10
        assert [i.timestamp for i in collector.items] == [float(i) for i in range(10)]

    def test_run_batch_size_respects_limit(self):
        source = IterableSource(items(10))
        collector = CollectorSink()
        source.connect(collector)
        assert source.run(limit=7, batch_size=3) == 7
        assert len(collector.items) == 7

    def test_invalid_batch_size_rejected(self):
        source = IterableSource(items(2))
        with pytest.raises(ValueError):
            source.run(batch_size=0)

    def test_sources_reject_incoming_batches(self):
        source = IterableSource(items(1))
        with pytest.raises(TypeError):
            source.push_batch(items(1))


class TestExecutorBatches:
    def test_executor_batch_replay_matches_single_replay(self):
        for batch_size in (None, 4):
            source = IterableSource(items(9))
            collector = CollectorSink()
            executor = PlanExecutor()
            executor.register(QueryPlan(
                "plan", source, [TagNormalizerOperator()], collector))
            emitted = executor.run(batch_size=batch_size)
            assert emitted == 9
            assert [i.timestamp for i in collector.items] == [
                float(i) for i in range(9)]
