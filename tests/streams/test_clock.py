"""Tests for the stream clocks."""

import pytest

from repro.streams.clock import ReplayClock, SimulatedClock, SystemClock


class TestSimulatedClock:
    def test_starts_at_given_time(self):
        assert SimulatedClock(5.0).now() == 5.0

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            SimulatedClock(-1.0)

    def test_advance_to_moves_forward(self):
        clock = SimulatedClock()
        clock.advance_to(10.0)
        assert clock.now() == 10.0

    def test_advance_backwards_is_rejected(self):
        clock = SimulatedClock(10.0)
        with pytest.raises(ValueError):
            clock.advance_to(5.0)

    def test_advance_by_delta(self):
        clock = SimulatedClock(3.0)
        clock.advance_by(4.0)
        assert clock.now() == 7.0

    def test_advance_by_negative_delta_rejected(self):
        with pytest.raises(ValueError):
            SimulatedClock().advance_by(-1.0)


class TestSystemClock:
    def test_is_monotone_non_decreasing(self):
        clock = SystemClock()
        assert clock.now() <= clock.now()


class TestReplayClock:
    def test_speedup_scales_elapsed_wall_time(self):
        wall = SimulatedClock(0.0)
        replay = ReplayClock(archive_start=1000.0, speedup=10.0, wall_clock=wall)
        wall.advance_to(5.0)
        assert replay.now() == pytest.approx(1050.0)

    def test_rejects_non_positive_speedup(self):
        with pytest.raises(ValueError):
            ReplayClock(0.0, speedup=0.0)

    def test_wall_delay_until_future_archive_time(self):
        wall = SimulatedClock(0.0)
        replay = ReplayClock(archive_start=0.0, speedup=100.0, wall_clock=wall)
        assert replay.wall_delay_until(500.0) == pytest.approx(5.0)

    def test_wall_delay_for_past_archive_time_is_zero(self):
        wall = SimulatedClock(0.0)
        replay = ReplayClock(archive_start=100.0, speedup=1.0, wall_clock=wall)
        assert replay.wall_delay_until(50.0) == 0.0
