"""The serving acceptance bar: served rankings are bit-identical.

Two pins:

* Rankings pushed to a subscriber while serving equal a batch replay of
  the same document stream under the same configuration — for shard
  counts 1 and 2 on both the serial and the process backend.
* A delta checkpoint taken *while serving* resumes into a continued run
  whose rankings match the uninterrupted serve, with the journal chain
  (base + segments) actually on disk.
"""

import asyncio

import pytest

from repro.core.config import EnBlogueConfig
from repro.core.engine import EnBlogue
from repro.datasets.twitter import TweetStreamGenerator
from repro.persistence import CheckpointCadence, load_engine
from repro.serving import DetectionService
from repro.sharding import ProcessBackend, ShardedEnBlogue

HOUR = 3600.0


def config(**overrides):
    defaults = dict(
        window_horizon=6 * HOUR,
        evaluation_interval=HOUR,
        num_seeds=10,
        min_seed_count=1,
        min_pair_support=1,
        min_history=2,
        predictor="moving_average",
        predictor_window=3,
    )
    defaults.update(overrides)
    return EnBlogueConfig(**defaults)


@pytest.fixture(scope="module")
def docs():
    corpus, _ = TweetStreamGenerator(
        hours=18, tweets_per_hour=30, seed=23).generate()
    return list(corpus)


def chunks(items, size):
    return [items[i:i + size] for i in range(0, len(items), size)]


def make_engine(num_shards, backend):
    if num_shards == 0:
        return EnBlogue(config())
    if backend == "process":
        backend = ProcessBackend(start_method="fork")
    return ShardedEnBlogue(config(), num_shards=num_shards, backend=backend)


def close(engine):
    if isinstance(engine, ShardedEnBlogue):
        engine.close()


def serve(engine, documents, chunk=64, cadence=None):
    """Serve documents through a service; returns the subscriber's frames."""

    async def scenario():
        service = DetectionService(engine, cadence=cadence)
        await service.start()
        subscription = service.subscribe()
        for batch in chunks(documents, chunk):
            await service.submit(batch)
        await service.stop()
        frames = []
        while (message := await subscription.next_message()) is not None:
            frames.append(message.payload)
        return frames

    return asyncio.run(scenario())


class TestServedRankingsBitIdentical:
    @pytest.mark.parametrize("num_shards", [1, 2])
    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_sharded_serve_matches_batch_replay(self, docs, num_shards,
                                                backend):
        reference = EnBlogue(config())
        reference.process_batch(docs)

        engine = make_engine(num_shards, backend)
        try:
            frames = serve(engine, docs)
        finally:
            close(engine)
        # Full EmergentTopic equality: every float must agree exactly.
        assert frames == reference.ranking_history()

    def test_single_engine_serve_matches_batch_replay(self, docs):
        reference = EnBlogue(config())
        reference.process_batch(docs)
        frames = serve(EnBlogue(config()), docs)
        assert frames == reference.ranking_history()

    def test_full_observability_never_perturbs_the_rankings(self, docs):
        """Profiler at 100Hz + event log + SLO ticks: still bit-identical.

        The whole observability stack reads timings and counters; none
        of it may touch engine math.  This pins it: a serve with every
        subsystem live produces the exact frames of a bare batch replay.
        """
        from repro.observability import Observability

        reference = EnBlogue(config())
        reference.process_batch(docs)

        observability = Observability()
        observability.profiler.start(interval=0.01)
        engine = EnBlogue(config(), observability=observability)
        try:
            frames = serve(engine, docs)
        finally:
            observability.close()
        assert frames == reference.ranking_history()
        # And the subsystems really were live while the stream ran.
        assert any(r["event"] == "batch"
                   for r in observability.log.records())
        assert observability.registry.counter(
            "repro_slo_ticks_total").value > 0


class TestCheckpointWhileServing:
    @pytest.mark.parametrize("num_shards,backend", [
        (0, None),            # the single engine
        (2, "serial"),
        (2, "process"),
    ])
    def test_delta_checkpoint_resumes_into_matching_serve(
        self, docs, tmp_path, num_shards, backend
    ):
        split = len(docs) // 2

        # The uninterrupted serve over the whole stream.
        uninterrupted = make_engine(num_shards, backend)
        try:
            all_frames = serve(uninterrupted, docs)
        finally:
            close(uninterrupted)

        # Serve the first half with a delta cadence riding the loop.
        first = make_engine(num_shards, backend)
        cadence = CheckpointCadence(
            first, directory=tmp_path, every=2, mode="delta", full_every=16,
        )
        try:
            serve(first, docs[:split], cadence=cadence)
        finally:
            close(first)
        assert cadence.checkpoints_written >= 2  # base + >= 1 tick
        assert list(tmp_path.glob("*.delta")), \
            "the serve-time cadence wrote no journal segments"

        # Resume from the journal chain and serve the remainder.  The
        # service's shutdown wrote a closing tick after the drain, so the
        # checkpoint covers every accepted document — nothing served is
        # lost even though the tail landed after the last cadence tick.
        resumed, _manifest = load_engine(
            tmp_path,
            backend="serial" if backend != "process"
            else ProcessBackend(start_method="fork"),
        )
        consumed = resumed.documents_processed
        assert consumed == split
        try:
            resumed_frames = serve(resumed, docs[consumed:])
        finally:
            close(resumed)

        # The continued serve reproduces the uninterrupted serve's tail.
        assert resumed_frames == all_frames[-len(resumed_frames):]
        assert len(resumed_frames) >= 2

    def test_shutdown_checkpoint_without_cadence_saves_end_state(
        self, docs, tmp_path
    ):
        engine = EnBlogue(config())
        cadence = CheckpointCadence(engine, directory=tmp_path)
        frames = serve(engine, docs[:256], cadence=cadence)
        assert cadence.checkpoints_written == 1

        resumed, _ = load_engine(tmp_path)
        assert resumed.documents_processed == 256
        assert resumed.ranking_history() == engine.ranking_history()
        assert frames == engine.ranking_history()

    def test_resumed_service_rejects_stale_batches_at_submit(
        self, docs, tmp_path
    ):
        """A 202 must never be handed out for documents the consumer can
        only drop: after a resume, submit() validates against the
        engine's checkpointed stream position, not a fresh None."""
        engine = EnBlogue(config())
        cadence = CheckpointCadence(engine, directory=tmp_path)
        serve(engine, docs[:128], cadence=cadence)
        resumed, _ = load_engine(tmp_path)

        async def scenario():
            service = DetectionService(resumed)
            await service.start()
            with pytest.raises(ValueError, match="out-of-order"):
                await service.submit(docs[:16])  # older than the resume point
            accepted = await service.submit(docs[128:160])
            await service.stop()
            return accepted, service

        accepted, service = asyncio.run(scenario())
        assert accepted == 32
        assert service.stats.batch_errors == 0
        assert resumed.documents_processed == 160
