"""Producer retry/backoff in the source pumps (``pump_source``).

One flaky poll must not kill a long-running producer task: with a
:class:`RetryPolicy` the pump counts the error, backs off on the
policy's *injected* sleep (nothing here waits real time) and re-obtains
the source's stream.  Only consecutive failures with zero progress
exhaust the budget.
"""

import asyncio

import pytest

from repro.core.config import EnBlogueConfig
from repro.core.engine import EnBlogue
from repro.datasets.twitter import TweetStreamGenerator
from repro.serving import DetectionService
from repro.serving.source import SourceProducerError, pump_source
from repro.sharding import RetryPolicy

HOUR = 3600.0


def config(**overrides):
    defaults = dict(
        window_horizon=6 * HOUR,
        evaluation_interval=HOUR,
        num_seeds=10,
        min_seed_count=1,
        min_pair_support=1,
        min_history=2,
        predictor="moving_average",
        predictor_window=3,
    )
    defaults.update(overrides)
    return EnBlogueConfig(**defaults)


@pytest.fixture(scope="module")
def docs():
    corpus, _ = TweetStreamGenerator(
        hours=12, tweets_per_hour=30, seed=11).generate()
    return list(corpus)


class FlakySource:
    """A live, resumable source whose poll fails at scripted positions.

    ``stream()`` picks up exactly where the previous attempt stopped —
    the shape of a polling feed with a cursor — so a retried pump never
    re-produces documents (which the service's time-order validation
    would reject).
    """

    def __init__(self, documents, fail_at=()):
        self._documents = list(documents)
        self._position = 0
        self._fail_at = sorted(fail_at, reverse=True)

    def stream(self):
        while self._position < len(self._documents):
            if self._fail_at and self._position == self._fail_at[-1]:
                self._fail_at.pop()
                raise ConnectionResetError(
                    f"poll failed at {self._position}")
            document = self._documents[self._position]
            self._position += 1
            yield document


def instant_policy(sleeps, **overrides):
    defaults = dict(max_retries=3, backoff_base=0.05, sleep=sleeps.append)
    defaults.update(overrides)
    return RetryPolicy(**defaults)


class TestPumpSourceRetry:
    def test_transient_failure_is_retried_and_counted(self, docs):
        sleeps = []

        async def scenario():
            engine = EnBlogue(config())
            service = DetectionService(engine)
            await service.start()
            source = FlakySource(docs, fail_at=[100])
            submitted = await pump_source(
                service, source, batch_size=64,
                retry_policy=instant_policy(sleeps))
            await service.stop()
            return engine, service, submitted

        engine, service, submitted = asyncio.run(scenario())
        assert submitted == len(docs)
        assert engine.documents_processed == len(docs)
        assert service.stats.source_errors == 1
        assert service.stats.source_retries == 1
        assert sleeps == [0.05]  # backoff ran on the injected sleep
        reference = EnBlogue(config())
        reference.process_batch(docs)
        assert engine.ranking_history() == reference.ranking_history()

    def test_progress_resets_the_attempt_budget(self, docs):
        # Four spaced failures with progress in between beat a budget of
        # two — only *consecutive* no-progress failures count.
        sleeps = []

        async def scenario():
            engine = EnBlogue(config())
            service = DetectionService(engine)
            await service.start()
            source = FlakySource(docs, fail_at=[50, 120, 200, 280])
            submitted = await pump_source(
                service, source, batch_size=64,
                retry_policy=instant_policy(sleeps, max_retries=2))
            await service.stop()
            return service, submitted

        service, submitted = asyncio.run(scenario())
        assert submitted == len(docs)
        assert service.stats.source_retries == 4

    def test_no_progress_failures_exhaust_the_budget(self, docs):
        sleeps = []

        async def scenario():
            engine = EnBlogue(config())
            service = DetectionService(engine)
            await service.start()
            # The same position fails every attempt: zero progress.
            source = FlakySource(docs, fail_at=[60, 60, 60, 60, 60, 60])
            try:
                with pytest.raises(SourceProducerError,
                                   match="giving up") as excinfo:
                    await pump_source(
                        service, source, batch_size=64,
                        retry_policy=instant_policy(sleeps, max_retries=2))
                return service, excinfo.value
            finally:
                await service.stop()

        service, error = asyncio.run(scenario())
        # Everything cleanly produced before the wedge was submitted.
        assert error.submitted == 60
        assert service.stats.source_errors == 3  # initial + 2 retries
        assert service.stats.source_retries == 2
        assert sleeps == [0.05, 0.1]

    def test_without_policy_first_failure_is_terminal(self, docs):
        async def scenario():
            engine = EnBlogue(config())
            service = DetectionService(engine)
            await service.start()
            source = FlakySource(docs, fail_at=[100])
            try:
                with pytest.raises(SourceProducerError):
                    await pump_source(service, source, batch_size=64)
            finally:
                await service.stop()
            return service

        service = asyncio.run(scenario())
        assert service.stats.source_errors == 1
        assert service.stats.source_retries == 0

    def test_limit_is_honored_across_retries(self, docs):
        sleeps = []

        async def scenario():
            engine = EnBlogue(config())
            service = DetectionService(engine)
            await service.start()
            source = FlakySource(docs, fail_at=[90])
            submitted = await pump_source(
                service, source, batch_size=50, limit=150,
                retry_policy=instant_policy(sleeps))
            await service.stop()
            return engine, submitted

        engine, submitted = asyncio.run(scenario())
        assert submitted == 150
        assert engine.documents_processed == 150
