"""Backpressure and shutdown: the bounded queue, slow subscribers, drains.

The satellite contract of the serving layer: producers stall (and resume)
on a full ingest queue instead of buffering without bound, slow SSE
subscribers are bounded by their frame buffer (oldest frames dropped,
counted), and a clean shutdown mid-stream loses no accepted document and
duplicates none — the served engine state equals an offline replay of
exactly the accepted prefix.
"""

import asyncio
import threading

import pytest

from repro.core.config import EnBlogueConfig
from repro.core.engine import EnBlogue
from repro.datasets.twitter import TweetStreamGenerator
from repro.serving import DetectionService

HOUR = 3600.0


def config(**overrides):
    defaults = dict(
        window_horizon=6 * HOUR,
        evaluation_interval=HOUR,
        num_seeds=10,
        min_seed_count=1,
        min_pair_support=1,
        min_history=2,
        predictor="moving_average",
        predictor_window=3,
    )
    defaults.update(overrides)
    return EnBlogueConfig(**defaults)


@pytest.fixture(scope="module")
def docs():
    corpus, _ = TweetStreamGenerator(
        hours=12, tweets_per_hour=30, seed=11).generate()
    return list(corpus)


def chunks(items, size):
    return [items[i:i + size] for i in range(0, len(items), size)]


class GatedEngine(EnBlogue):
    """An engine whose ``process_batch`` waits for an external gate.

    The gate blocks the *executor* thread, standing in for a shard
    backend that fell behind; the event loop stays free, which is exactly
    the condition under which the bounded queue must stall producers.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.gate = threading.Event()
        self.entered = threading.Event()

    def process_batch(self, documents):
        self.entered.set()
        assert self.gate.wait(timeout=30.0), "test gate never opened"
        return super().process_batch(documents)


class TestProducerBackpressure:
    def test_full_queue_stalls_the_producer_until_the_consumer_drains(
        self, docs
    ):
        async def scenario():
            engine = GatedEngine(config())
            service = DetectionService(engine, queue_capacity=2)
            await service.start()

            batches = chunks(docs[:256], 64)  # 4 batches > capacity + in-flight
            submitted = []

            async def producer():
                for batch in batches:
                    await service.submit(batch)
                    submitted.append(len(batch))

            task = asyncio.ensure_future(producer())
            # The consumer takes batch 0 into the (gated) engine; batches
            # 1 and 2 fill the queue; the producer must now be parked on
            # batch 3's put.
            await asyncio.get_running_loop().run_in_executor(
                None, engine.entered.wait, 5.0
            )
            await asyncio.sleep(0.05)
            assert not task.done(), "producer should stall on the full queue"
            assert len(submitted) == 3
            assert service.queue_depth() == 2

            engine.gate.set()  # the backend catches up ...
            await asyncio.wait_for(task, timeout=30.0)  # ... producer resumes
            assert len(submitted) == 4
            await service.stop()
            return engine

        engine = asyncio.run(scenario())
        assert engine.documents_processed == 256

    def test_concurrent_producer_validates_against_the_parked_batch(
        self, docs
    ):
        """While producer A is parked on a full queue, producer B's order
        check must see A's batch — not the pre-A high-water mark — or B
        would earn a 202 for documents the consumer can only drop."""

        async def scenario():
            engine = GatedEngine(config())
            service = DetectionService(engine, queue_capacity=1)
            await service.start()
            await service.submit(docs[:64])    # in-flight (gated)
            await service.submit(docs[64:128])  # fills the queue

            async def producer_a():
                await service.submit(docs[128:192])  # parks on the put

            task = asyncio.ensure_future(producer_a())
            await asyncio.sleep(0.05)
            assert not task.done()
            # Producer B races in with a batch older than A's parked one.
            with pytest.raises(ValueError, match="out-of-order"):
                await service.submit(docs[100:120])
            engine.gate.set()
            await asyncio.wait_for(task, timeout=30.0)
            await service.stop()
            return engine, service

        engine, service = asyncio.run(scenario())
        assert engine.documents_processed == 192
        assert service.stats.batch_errors == 0

    def test_high_watermark_is_recorded(self, docs):
        async def scenario():
            engine = GatedEngine(config())
            service = DetectionService(engine, queue_capacity=3)
            await service.start()
            for batch in chunks(docs[:256], 64):
                await service.submit(batch)
            engine.gate.set()
            await service.stop()
            return service

        service = asyncio.run(scenario())
        assert service.stats.queue_high_watermark == 3


class TestSlowSubscriber:
    def test_buffer_is_bounded_and_drops_oldest(self, docs):
        async def scenario():
            engine = EnBlogue(config())
            service = DetectionService(engine)
            await service.start()
            slow = service.subscribe(buffer_limit=3)
            for batch in chunks(docs, 64):
                await service.submit(batch)
            await service.stop()
            return slow

        slow = asyncio.run(scenario())
        reference = EnBlogue(config())
        reference.process_batch(docs)
        published = len(reference.ranking_history())
        assert published > 3  # otherwise nothing is being bounded
        assert slow.pending() == 3
        assert slow.dropped == published - 3

        async def collect(subscription):
            frames = []
            while (message := await subscription.next_message()) is not None:
                frames.append(message)
            return frames

        frames = asyncio.run(collect(slow))
        # What survives is the newest window of the stream, in order.
        assert len(frames) == 3
        sequences = [message.sequence for message in frames]
        assert sequences == sorted(sequences)
        assert sequences[-1] == published - 1

    def test_fast_subscriber_sees_every_frame(self, docs):
        async def scenario():
            engine = EnBlogue(config())
            service = DetectionService(engine)
            await service.start()
            subscription = service.subscribe()
            received = []

            async def consume():
                while (message := await subscription.next_message()) is not None:
                    received.append(message.payload)

            consumer = asyncio.ensure_future(consume())
            for batch in chunks(docs, 64):
                await service.submit(batch)
            await service.stop()
            await consumer
            return received, subscription

        received, subscription = asyncio.run(scenario())
        reference = EnBlogue(config())
        reference.process_batch(docs)
        assert received == reference.ranking_history()
        assert subscription.dropped == 0


class TestCleanShutdown:
    def test_drain_processes_every_accepted_batch(self, docs):
        """Stop lands mid-stream with queued batches: nothing lost or doubled."""

        async def scenario():
            engine = GatedEngine(config())
            service = DetectionService(engine, queue_capacity=4)
            await service.start()
            subscription = service.subscribe()
            for batch in chunks(docs[:320], 64):  # fills queue + in-flight
                await service.submit(batch)
            engine.gate.set()
            await service.stop()  # drain=True is the default
            frames = []
            while (message := await subscription.next_message()) is not None:
                frames.append(message.payload)
            return engine, frames

        engine, frames = asyncio.run(scenario())
        assert engine.documents_processed == 320

        reference = EnBlogue(config())
        reference.process_batch(docs[:320])
        assert frames == reference.ranking_history()
        assert engine.ranking_history() == reference.ranking_history()

    def test_abandoning_the_queue_still_finishes_the_inflight_batch(
        self, docs
    ):
        async def scenario():
            engine = GatedEngine(config())
            service = DetectionService(engine, queue_capacity=4)
            await service.start()
            for batch in chunks(docs[:192], 64):
                await service.submit(batch)
            await asyncio.get_running_loop().run_in_executor(
                None, engine.entered.wait, 5.0
            )
            engine.gate.set()
            await service.stop(drain=False)
            return engine

        engine = asyncio.run(scenario())
        # The in-flight batch completed (cancellation cannot interrupt the
        # executor thread mid-batch); queued ones were abandoned whole.
        assert engine.documents_processed in (64, 128, 192)
        assert engine.documents_processed % 64 == 0
