"""The HTTP face: ingest, rankings, SSE framing, status, error paths."""

import asyncio
import json

import pytest

from repro.core.config import EnBlogueConfig
from repro.core.engine import EnBlogue
from repro.datasets.twitter import TweetStreamGenerator
from repro.portal.serialization import ranking_to_dict
from repro.serving import DetectionService, RankingServer, parse_ingest_body
from repro.serving.http import IngestDocument

HOUR = 3600.0


def config(**overrides):
    defaults = dict(
        window_horizon=6 * HOUR,
        evaluation_interval=HOUR,
        num_seeds=10,
        min_seed_count=1,
        min_pair_support=1,
        min_history=2,
        predictor="moving_average",
        predictor_window=3,
    )
    defaults.update(overrides)
    return EnBlogueConfig(**defaults)


@pytest.fixture(scope="module")
def docs():
    corpus, _ = TweetStreamGenerator(
        hours=12, tweets_per_hour=30, seed=11).generate()
    return list(corpus)


def doc_payload(document):
    return {
        "timestamp": document.timestamp,
        "tags": sorted(document.tags),
        "text": document.text,
    }


async def http_request(port, method, path, body=None):
    """One HTTP/1.1 request against localhost; returns (status, json)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = b"" if body is None else json.dumps(body).encode("utf-8")
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: localhost\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: close\r\n\r\n"
    ).encode("latin-1")
    writer.write(head + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    header_blob, _, body_blob = raw.partition(b"\r\n\r\n")
    status = int(header_blob.split(b" ", 2)[1])
    return status, json.loads(body_blob)


async def send_on_connection(reader, writer, method, path, body=None,
                             version="HTTP/1.1", connection=None):
    """Send one request on an open connection; read one framed response.

    Returns ``(status, headers, json_body)`` without closing the socket,
    parsing exactly Content-Length body bytes so the connection stays
    usable for the next request.
    """
    payload = b"" if body is None else json.dumps(body).encode("utf-8")
    lines = [
        f"{method} {path} {version}",
        "Host: localhost",
        f"Content-Length: {len(payload)}",
    ]
    if connection is not None:
        lines.append(f"Connection: {connection}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    writer.write(head + payload)
    await writer.drain()

    status_line = await reader.readline()
    status = int(status_line.split(b" ", 2)[1])
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0"))
    body_blob = await reader.readexactly(length) if length else b""
    return status, headers, json.loads(body_blob) if body_blob else None


async def read_sse_frames(port, count, collected):
    """Read ``count`` data frames from the SSE stream into ``collected``."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(
        b"GET /rankings/stream HTTP/1.1\r\nHost: localhost\r\n\r\n"
    )
    await writer.drain()
    try:
        while len(collected) < count:
            line = await reader.readline()
            if not line:
                break
            if line.startswith(b"data: "):
                payload = json.loads(line[len(b"data: "):])
                if payload:  # the end-of-stream frame is an empty object
                    collected.append(payload)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


class TestParsing:
    def test_parse_ingest_accepts_array_and_wrapped_forms(self):
        raw = json.dumps([{"timestamp": 1.0, "tags": ["a", "b"]}])
        wrapped = json.dumps(
            {"documents": [{"timestamp": 1.0, "tags": ["a", "b"]}]}
        )
        for body in (raw, wrapped):
            documents = parse_ingest_body(body.encode())
            assert len(documents) == 1
            assert documents[0].timestamp == 1.0
            assert documents[0].tags == ("a", "b")

    @pytest.mark.parametrize("body", [
        b"not json",
        b"{}",
        b'[{"tags": ["a"]}]',              # no timestamp
        b'[{"timestamp": 1, "tags": "a"}]',  # tags must be an array
        b'["nope"]',
    ])
    def test_parse_ingest_rejects_malformed_bodies(self, body):
        with pytest.raises(ValueError):
            parse_ingest_body(body)

    def test_ingest_document_shape_feeds_process_batch(self):
        engine = EnBlogue(config())
        documents = [
            IngestDocument({"timestamp": float(hour * HOUR),
                            "tags": ["alpha", "beta"]})
            for hour in range(4)
        ]
        rankings = engine.process_batch(documents)
        assert engine.documents_processed == 4
        assert len(rankings) == 3


class TestEndpoints:
    def test_ingest_rankings_stream_and_status(self, docs):
        async def scenario():
            engine = EnBlogue(config())
            service = DetectionService(engine)
            await service.start()
            server = RankingServer(service, port=0)
            await server.start()
            port = server.port

            frames = []
            reference = EnBlogue(config())
            expected = len(reference.process_batch(docs[:256]))
            reader_task = asyncio.ensure_future(
                read_sse_frames(port, expected, frames)
            )
            await asyncio.sleep(0.05)  # let the stream subscribe first

            status, body = await http_request(
                port, "POST", "/ingest", [doc_payload(d) for d in docs[:256]]
            )
            assert status == 202
            assert body["accepted"] == 256

            await asyncio.wait_for(reader_task, timeout=10.0)
            await service.drain()

            status, body = await http_request(port, "GET", "/rankings")
            assert status == 200

            status, state = await http_request(port, "GET", "/status")
            assert status == 200
            assert state["documents_processed"] == 256

            await server.stop()
            await service.stop()
            return engine, frames, body["ranking"]

        engine, frames, current = asyncio.run(scenario())
        reference = EnBlogue(config())
        reference.process_batch(docs[:256])
        # SSE frames round-trip through JSON bit-identically.
        assert frames == [
            ranking_to_dict(r) for r in reference.ranking_history()
        ]
        assert current == frames[-1]

    def test_error_statuses(self, docs):
        async def scenario():
            engine = EnBlogue(config())
            service = DetectionService(engine)
            await service.start()
            server = RankingServer(service, port=0)
            await server.start()
            port = server.port

            results = {}
            results["not_found"] = await http_request(port, "GET", "/nope")
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b"POST /ingest HTTP/1.1\r\nHost: x\r\n"
                         b"Content-Length: 8\r\n\r\nnot json")
            await writer.drain()
            raw = await reader.read()
            writer.close()
            results["bad_json"] = int(raw.split(b" ", 2)[1])

            # An unparsable Content-Length is a 400, not a dropped
            # connection with an unretrieved task exception in the loop.
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b"POST /ingest HTTP/1.1\r\nHost: x\r\n"
                         b"Content-Length: abc\r\n\r\n")
            await writer.drain()
            raw = await reader.read()
            writer.close()
            results["bad_length"] = int(raw.split(b" ", 2)[1])

            await http_request(
                port, "POST", "/ingest",
                [doc_payload(d) for d in docs[10:20]],
            )
            results["out_of_order"] = await http_request(
                port, "POST", "/ingest",
                [doc_payload(d) for d in docs[:10]],
            )

            await service.stop()
            results["closed"] = await http_request(
                port, "POST", "/ingest", [doc_payload(docs[20])]
            )
            await server.stop()
            return results

        results = asyncio.run(scenario())
        assert results["not_found"][0] == 404
        assert results["bad_json"] == 400
        assert results["bad_length"] == 400
        assert results["out_of_order"][0] == 400
        assert "out-of-order" in results["out_of_order"][1]["error"]
        assert results["closed"][0] == 503

    def test_keep_alive_serves_sequential_requests(self, docs):
        async def scenario():
            engine = EnBlogue(config())
            service = DetectionService(engine)
            await service.start()
            server = RankingServer(service, port=0)
            await server.start()
            port = server.port

            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                status, headers, _ = await send_on_connection(
                    reader, writer, "POST", "/ingest",
                    [doc_payload(d) for d in docs[:64]],
                )
                assert status == 202
                assert headers["connection"] == "keep-alive"
                await service.drain()
                # Same socket, second and third requests.
                status, headers, state = await send_on_connection(
                    reader, writer, "GET", "/status"
                )
                assert status == 200
                assert headers["connection"] == "keep-alive"
                assert state["documents_processed"] == 64
                status, _, body = await send_on_connection(
                    reader, writer, "GET", "/rankings"
                )
                assert status == 200
                assert "ranking" in body
            finally:
                writer.close()
                await writer.wait_closed()
            await server.stop()
            await service.stop()

        asyncio.run(scenario())

    def test_connection_close_is_honored(self):
        async def scenario():
            service = DetectionService(EnBlogue(config()))
            await service.start()
            server = RankingServer(service, port=0)
            await server.start()

            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            status, headers, _ = await send_on_connection(
                reader, writer, "GET", "/status", connection="close"
            )
            assert status == 200
            assert headers["connection"] == "close"
            assert await reader.read() == b""  # server closed its side
            writer.close()
            await server.stop()
            await service.stop()

        asyncio.run(scenario())

    def test_http_1_0_defaults_to_close(self):
        async def scenario():
            service = DetectionService(EnBlogue(config()))
            await service.start()
            server = RankingServer(service, port=0)
            await server.start()
            port = server.port

            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            _, headers, _ = await send_on_connection(
                reader, writer, "GET", "/status", version="HTTP/1.0"
            )
            assert headers["connection"] == "close"
            assert await reader.read() == b""
            writer.close()

            # An explicit keep-alive request opts the 1.0 client in.
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            _, headers, _ = await send_on_connection(
                reader, writer, "GET", "/status", version="HTTP/1.0",
                connection="keep-alive",
            )
            assert headers["connection"] == "keep-alive"
            status, _, _ = await send_on_connection(
                reader, writer, "GET", "/status", version="HTTP/1.0",
                connection="keep-alive",
            )
            assert status == 200
            writer.close()
            await server.stop()
            await service.stop()

        asyncio.run(scenario())

    def test_error_response_closes_the_connection(self):
        async def scenario():
            service = DetectionService(EnBlogue(config()))
            await service.start()
            server = RankingServer(service, port=0)
            await server.start()

            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            status, headers, _ = await send_on_connection(
                reader, writer, "GET", "/nope", connection="keep-alive"
            )
            assert status == 404
            assert headers["connection"] == "close"
            assert await reader.read() == b""
            writer.close()
            await server.stop()
            await service.stop()

        asyncio.run(scenario())

    def test_rankings_null_before_first_evaluation(self):
        async def scenario():
            service = DetectionService(EnBlogue(config()))
            await service.start()
            server = RankingServer(service, port=0)
            await server.start()
            status, body = await http_request(server.port, "GET", "/rankings")
            await server.stop()
            await service.stop()
            return status, body

        status, body = asyncio.run(scenario())
        assert status == 200
        assert body["ranking"] is None

    def test_rankings_carries_degradation_markers(self):
        async def scenario():
            service = DetectionService(EnBlogue(config()))
            await service.start()
            server = RankingServer(service, port=0)
            await server.start()
            status, body = await http_request(server.port, "GET", "/rankings")
            await server.stop()
            await service.stop()
            return status, body

        status, body = asyncio.run(scenario())
        assert status == 200
        assert body["stale"] is False
        assert body["recovering_shards"] == []

    def test_dead_shard_pool_maps_ingest_to_503_with_retry_after(self, docs):
        # An *unsupervised* worker death tears the pool down for good:
        # the first batch poisons the engine, the next POST /ingest gets
        # a clean 503 + Retry-After instead of a 500 or a hung socket.
        from repro.faults import FaultPlan
        from repro.sharding import ShardedEnBlogue
        from repro.sharding.backends import ThreadBackend

        async def scenario():
            backend = ThreadBackend()
            backend.bind_fault_plan(
                FaultPlan().kill_worker(0, after_batches=1))
            engine = ShardedEnBlogue(config(), num_shards=2,
                                     backend=backend)
            service = DetectionService(engine)
            await service.start()
            server = RankingServer(service, port=0)
            await server.start()
            port = server.port
            try:
                status, _ = await http_request(
                    port, "POST", "/ingest",
                    [doc_payload(d) for d in docs[:256]],
                )
                assert status == 202  # accepted before the pool died
                await service.drain()

                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port)
                status, headers, body = await send_on_connection(
                    reader, writer, "POST", "/ingest",
                    [doc_payload(docs[256])],
                )
                writer.close()
                await writer.wait_closed()

                _, state = await http_request(port, "GET", "/status")
                return status, headers, body, state
            finally:
                await server.stop()
                await service.stop()
                engine.close()

        status, headers, body, state = asyncio.run(scenario())
        assert status == 503
        assert headers["retry-after"] == "5"
        assert "shard backend unavailable" in body["error"]
        assert body["retry_after"] == 5
        # A dead worker with no supervision has no recovery coming:
        # /status reports the node unfit for ingest.
        assert state["healthy"] is False

    def test_supervised_recovery_keeps_serving_identical_rankings(
            self, docs):
        from repro.faults import FaultPlan
        from repro.sharding import (
            RetryPolicy,
            ShardedEnBlogue,
            SupervisedBackend,
        )
        from repro.sharding.backends import ThreadBackend

        sleeps = []

        def fake_sleep(seconds):
            sleeps.append(seconds)

        async def scenario():
            policy = RetryPolicy(max_retries=3, backoff_base=0.01,
                                 sleep=fake_sleep)
            backend = SupervisedBackend(ThreadBackend(), policy=policy)
            backend.bind_fault_plan(
                FaultPlan(sleep=fake_sleep).kill_worker(1, after_batches=1))
            engine = ShardedEnBlogue(config(), num_shards=2,
                                     backend=backend)
            service = DetectionService(engine)
            await service.start()
            server = RankingServer(service, port=0)
            await server.start()
            port = server.port
            try:
                status, _ = await http_request(
                    port, "POST", "/ingest",
                    [doc_payload(d) for d in docs[:256]],
                )
                assert status == 202
                await service.drain()
                rankings_status, body = await http_request(
                    port, "GET", "/rankings")
                status_code, state = await http_request(
                    port, "GET", "/status")
                return rankings_status, body, status_code, state
            finally:
                await server.stop()
                await service.stop()
                engine.close()

        rankings_status, body, status_code, state = asyncio.run(scenario())
        assert rankings_status == 200 and status_code == 200
        assert state["healthy"] is True
        assert state["recoveries"] == 1
        assert state["permanent_failure"] is None
        assert state["stale"] is False  # recovery already completed
        reference = EnBlogue(config())
        reference.process_batch([IngestDocument(doc_payload(d))
                                 for d in docs[:256]])
        assert body["ranking"] == ranking_to_dict(
            reference.ranking_history()[-1])
        assert body["stale"] is False

    def test_unexpected_submit_failure_maps_to_500(self):
        async def scenario():
            service = DetectionService(EnBlogue(config()))
            await service.start()
            server = RankingServer(service, port=0)
            await server.start()

            async def boom(documents):
                raise RuntimeError("wires crossed")

            service.submit = boom
            status, body = await http_request(
                server.port, "POST", "/ingest",
                [{"timestamp": 1.0, "tags": ["a", "b"]}],
            )
            await server.stop()
            await service.stop()
            return status, body

        status, body = asyncio.run(scenario())
        assert status == 500
        assert "internal error" in body["error"]

    def test_stream_ends_cleanly_on_service_stop(self, docs):
        async def scenario():
            service = DetectionService(EnBlogue(config()))
            await service.start()
            server = RankingServer(service, port=0)
            await server.start()
            port = server.port

            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(
                b"GET /rankings/stream HTTP/1.1\r\nHost: x\r\n\r\n"
            )
            await writer.drain()
            await asyncio.sleep(0.05)
            await service.submit(docs[:128])
            await service.stop()  # ends every subscription stream
            raw = await asyncio.wait_for(reader.read(), timeout=10.0)
            writer.close()
            await server.stop()
            return raw

        raw = asyncio.run(scenario())
        assert b"event: end" in raw
