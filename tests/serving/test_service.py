"""The serving core: ingest queue, consumer, push, counters, lifecycle."""

import asyncio

import pytest

from repro.core.config import EnBlogueConfig
from repro.core.engine import EnBlogue
from repro.datasets.twitter import TweetStreamGenerator
from repro.portal.push import PushDispatcher
from repro.serving import DetectionService, ServiceClosedError

HOUR = 3600.0


def config(**overrides):
    defaults = dict(
        window_horizon=6 * HOUR,
        evaluation_interval=HOUR,
        num_seeds=10,
        min_seed_count=1,
        min_pair_support=1,
        min_history=2,
        predictor="moving_average",
        predictor_window=3,
    )
    defaults.update(overrides)
    return EnBlogueConfig(**defaults)


@pytest.fixture(scope="module")
def docs():
    corpus, _ = TweetStreamGenerator(
        hours=12, tweets_per_hour=30, seed=11).generate()
    return list(corpus)


def chunks(items, size):
    return [items[i:i + size] for i in range(0, len(items), size)]


def run(coroutine):
    return asyncio.run(coroutine)


async def serve_all(engine, documents, chunk=64, **service_kwargs):
    """Serve a document list through a service; returns (service, frames)."""
    service = DetectionService(engine, **service_kwargs)
    await service.start()
    subscription = service.subscribe()
    for batch in chunks(documents, chunk):
        await service.submit(batch)
    await service.stop()
    frames = []
    while (message := await subscription.next_message()) is not None:
        frames.append(message.payload)
    return service, frames


class TestServeReplay:
    def test_served_rankings_match_batch_replay(self, docs):
        reference = EnBlogue(config())
        reference.process_batch(docs)

        engine = EnBlogue(config())
        service, frames = run(serve_all(engine, docs))
        assert frames == reference.ranking_history()
        assert engine.documents_processed == len(docs)
        assert service.stats.rankings_published == len(frames)

    def test_micro_batch_size_does_not_change_rankings(self, docs):
        engines = [EnBlogue(config()) for _ in range(3)]
        results = [
            run(serve_all(engine, docs, chunk=size))[1]
            for engine, size in zip(engines, (16, 64, 512))
        ]
        assert results[0] == results[1] == results[2]

    def test_counters_and_status(self, docs):
        engine = EnBlogue(config())
        service, frames = run(serve_all(engine, docs, chunk=50))
        status = service.status()
        assert status["documents_submitted"] == len(docs)
        assert status["documents_processed"] == len(docs)
        assert status["batches_processed"] == len(chunks(docs, 50))
        assert status["rankings_published"] == len(frames)
        assert status["batch_errors"] == 0
        assert status["closed"] is True
        assert status["queue_depth"] == 0

    def test_status_reports_engine_runtime(self, docs):
        engine = EnBlogue(config())
        service, _ = run(serve_all(engine, docs))
        status = service.status()
        assert status["engine"] == "single"
        assert status["backend"] == "inline"
        assert status["shards"] == 1
        assert status["evaluation_path"] == engine.evaluation_path
        assert status["evaluation_path"] in ("vectorized", "scalar")

    def test_current_ranking_is_the_latest_frame(self, docs):
        async def scenario():
            engine = EnBlogue(config())
            service = DetectionService(engine)
            await service.start()
            subscription = service.subscribe()
            for batch in chunks(docs, 64):
                await service.submit(batch)
            await service.drain()
            current = await service.current_ranking()
            await service.stop()
            frames = []
            while (message := await subscription.next_message()) is not None:
                frames.append(message.payload)
            return current, frames

        current, frames = run(scenario())
        assert frames
        assert current == frames[-1]


class TestLifecycle:
    def test_submit_after_stop_raises(self, docs):
        async def scenario():
            service = DetectionService(EnBlogue(config()))
            await service.start()
            await service.stop()
            with pytest.raises(ServiceClosedError):
                await service.submit(docs[:4])

        run(scenario())

    def test_stop_is_idempotent(self):
        async def scenario():
            service = DetectionService(EnBlogue(config()))
            await service.start()
            await service.stop()
            await service.stop()

        run(scenario())

    def test_empty_batch_is_a_noop(self):
        async def scenario():
            service = DetectionService(EnBlogue(config()))
            await service.start()
            assert await service.submit([]) == 0
            await service.stop()
            assert service.stats.batches_submitted == 0

        run(scenario())

    def test_external_dispatcher_is_not_closed_by_stop(self, docs):
        async def scenario():
            dispatcher = PushDispatcher()
            engine = EnBlogue(config())
            service = DetectionService(engine, dispatcher=dispatcher)
            await service.start()
            await service.submit(docs[:64])
            await service.stop()
            return dispatcher

        dispatcher = run(scenario())
        assert not dispatcher.closed

    def test_owned_dispatcher_closes_with_the_service(self):
        async def scenario():
            service = DetectionService(EnBlogue(config()))
            await service.start()
            await service.stop()
            return service.dispatcher

        dispatcher = run(scenario())
        assert dispatcher.closed


class TestSourcePumps:
    """The async adapters bridging sources/iter_batches into the queue."""

    def test_pump_batches_feeds_dataset_iter_batches(self, docs):
        from repro.serving import pump_batches

        async def scenario():
            engine = EnBlogue(config())
            service = DetectionService(engine)
            await service.start()
            generator = TweetStreamGenerator(
                hours=12, tweets_per_hour=30, seed=11)
            submitted = await pump_batches(
                service, generator.iter_batches(64))
            await service.stop()
            return engine, submitted

        engine, submitted = run(scenario())
        assert submitted == len(docs)
        reference = EnBlogue(config())
        reference.process_batch(docs)
        assert engine.ranking_history() == reference.ranking_history()

    def test_pump_source_paces_a_stream_source(self, docs):
        from repro.serving import pump_source
        from repro.streams.sources import DocumentStreamSource

        async def scenario():
            engine = EnBlogue(config())
            service = DetectionService(engine, queue_capacity=2)
            await service.start()
            source = DocumentStreamSource(docs, source_name="twitter")
            submitted = await pump_source(service, source, batch_size=64)
            await service.stop()
            return engine, submitted

        engine, submitted = run(scenario())
        assert submitted == len(docs)
        assert engine.documents_processed == len(docs)

    def test_pump_source_respects_limit_without_over_consuming(self, docs):
        from repro.serving import pump_source
        from repro.streams.sources import DocumentStreamSource

        pulled = []

        def live_feed():
            # Stands in for a non-replayable live source: every document
            # pulled but not submitted would be lost forever.
            for document in docs:
                pulled.append(document)
                yield document

        async def scenario():
            engine = EnBlogue(config())
            service = DetectionService(engine)
            await service.start()
            source = DocumentStreamSource(live_feed(), source_name="twitter")
            submitted = await pump_source(
                service, source, batch_size=50, limit=120)
            await service.stop()
            return engine, submitted

        engine, submitted = run(scenario())
        assert submitted == 120
        assert engine.documents_processed == 120
        assert len(pulled) == 120  # the 121st document was never taken


class TestValidation:
    def test_out_of_order_batch_rejected_at_submit(self, docs):
        async def scenario():
            service = DetectionService(EnBlogue(config()))
            await service.start()
            await service.submit(docs[10:20])
            with pytest.raises(ValueError, match="out-of-order"):
                await service.submit(docs[:10])
            await service.stop()
            return service

        service = run(scenario())
        # The bad batch was refused before it reached the queue.
        assert service.stats.batches_submitted == 1
        assert service.stats.batch_errors == 0

    def test_out_of_order_inside_a_batch_rejected(self, docs):
        async def scenario():
            service = DetectionService(EnBlogue(config()))
            await service.start()
            with pytest.raises(ValueError, match="out-of-order"):
                await service.submit([docs[5], docs[2]])
            await service.stop()

        run(scenario())

    def test_consumer_survives_an_engine_rejection(self, docs):
        """A batch the engine rejects is dropped whole; serving continues."""

        class Brittle(EnBlogue):
            def process_batch(self, documents):
                documents = list(documents)
                if any(getattr(d, "poison", False) for d in documents):
                    raise RuntimeError("poisoned batch")
                return super().process_batch(documents)

        class Poison:
            timestamp = docs[63].timestamp
            tags = ("a", "b")
            entities = ()
            text = ""
            poison = True

        async def scenario():
            engine = Brittle(config())
            service = DetectionService(engine)
            await service.start()
            await service.submit(docs[:64])
            await service.submit([Poison()])
            await service.submit(docs[64:128])
            await service.stop()
            return engine, service

        engine, service = run(scenario())
        assert service.stats.batch_errors == 1
        assert "poisoned" in service.stats.last_error
        assert engine.documents_processed == 128

    def test_consumer_survives_a_raising_subscriber_callback(self, docs):
        """A portal session callback that raises must not kill the
        consumer: the engine already ingested the batch, and a dead
        consumer would keep accepting batches nothing drains."""

        async def scenario():
            dispatcher = PushDispatcher()
            from repro.portal.server import GLOBAL_CHANNEL

            def exploding(message):
                raise RuntimeError("subscriber blew up")

            dispatcher.subscribe(GLOBAL_CHANNEL, "bad-session", exploding)
            engine = EnBlogue(config())
            service = DetectionService(engine, dispatcher=dispatcher)
            await service.start()
            subscription = service.subscribe()
            for batch in chunks(docs, 64):
                await service.submit(batch)
            await service.stop()
            frames = []
            while (message := await subscription.next_message()) is not None:
                frames.append(message.payload)
            return engine, service, frames

        engine, service, frames = run(scenario())
        assert engine.documents_processed == len(docs)
        assert service.stats.publish_errors > 0
        assert "blew up" in service.stats.last_error
        assert service.stats.batch_errors == 0
        # The exploding callback fired before the fan-out delivery, so
        # those frames never reached async subscribers — but the stream
        # stayed alive and ended cleanly.
        assert frames == []
