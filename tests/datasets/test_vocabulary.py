"""Tests for tag vocabularies and Zipf sampling."""

import random
from collections import Counter

import pytest

from repro.datasets.vocabulary import TagVocabulary, ZipfSampler, news_vocabulary


class TestZipfSampler:
    def test_rejects_empty_items_and_bad_exponent(self):
        with pytest.raises(ValueError):
            ZipfSampler([])
        with pytest.raises(ValueError):
            ZipfSampler(["a"], exponent=0.0)

    def test_samples_come_from_vocabulary(self):
        sampler = ZipfSampler(["a", "b", "c"], rng=random.Random(1))
        for _ in range(50):
            assert sampler.sample() in {"a", "b", "c"}

    def test_head_items_sampled_more_often(self):
        sampler = ZipfSampler([f"t{i}" for i in range(20)], exponent=1.2,
                              rng=random.Random(3))
        counts = Counter(sampler.sample() for _ in range(3000))
        assert counts["t0"] > counts["t10"]
        assert counts["t0"] > counts["t19"]

    def test_sample_distinct_returns_unique_items(self):
        sampler = ZipfSampler(["a", "b", "c", "d"], rng=random.Random(2))
        distinct = sampler.sample_distinct(3)
        assert len(distinct) == 3
        assert len(set(distinct)) == 3

    def test_sample_distinct_bounded_by_vocabulary_size(self):
        sampler = ZipfSampler(["a", "b"], rng=random.Random(2))
        assert len(sampler.sample_distinct(10)) == 2

    def test_sample_distinct_zero(self):
        sampler = ZipfSampler(["a"])
        assert sampler.sample_distinct(0) == []

    def test_probability_sums_to_one(self):
        items = ["a", "b", "c", "d"]
        sampler = ZipfSampler(items)
        total = sum(sampler.probability(item) for item in items)
        assert total == pytest.approx(1.0)

    def test_probability_of_unknown_item_is_zero(self):
        assert ZipfSampler(["a"]).probability("zzz") == 0.0

    def test_deterministic_with_seeded_rng(self):
        first = ZipfSampler(["a", "b", "c"], rng=random.Random(7))
        second = ZipfSampler(["a", "b", "c"], rng=random.Random(7))
        assert [first.sample() for _ in range(20)] == [second.sample() for _ in range(20)]


class TestTagVocabulary:
    def test_add_and_query_categories(self):
        vocabulary = TagVocabulary({"sports": ["tennis", "golf"]})
        assert vocabulary.categories() == ["sports"]
        assert vocabulary.tags("sports") == ["tennis", "golf"]

    def test_all_tags_deduplicated(self):
        vocabulary = TagVocabulary({
            "a": ["x", "shared"],
            "b": ["y", "shared"],
        })
        assert vocabulary.tags() == ["x", "shared", "y"]
        assert len(vocabulary) == 3

    def test_category_of(self):
        vocabulary = TagVocabulary({"sports": ["tennis"]})
        assert vocabulary.category_of("tennis") == "sports"
        assert vocabulary.category_of("unknown") is None

    def test_contains(self):
        vocabulary = TagVocabulary({"sports": ["tennis"]})
        assert "tennis" in vocabulary
        assert "golf" not in vocabulary

    def test_unknown_category_raises(self):
        with pytest.raises(KeyError):
            TagVocabulary({"a": ["x"]}).tags("b")

    def test_validation(self):
        vocabulary = TagVocabulary()
        with pytest.raises(ValueError):
            vocabulary.add_category("", ["x"])
        with pytest.raises(ValueError):
            vocabulary.add_category("empty", [])


class TestNewsVocabulary:
    def test_has_expected_categories(self):
        vocabulary = news_vocabulary()
        assert "politics" in vocabulary.categories()
        assert "weather" in vocabulary.categories()
        assert "volcano" in vocabulary.tags("world")
        assert len(vocabulary) > 30
