"""Tests for the synthetic stream generator and the Figure 1 scenario."""

import pytest

from repro.datasets.events import EmergentEvent, EventSchedule
from repro.datasets.synthetic import (
    SyntheticStreamGenerator,
    correlation_shift_stream,
    figure1_stream,
)
from repro.datasets.vocabulary import news_vocabulary


class TestSyntheticStreamGenerator:
    def test_generates_requested_number_of_steps(self):
        generator = SyntheticStreamGenerator(docs_per_step=5, seed=1)
        corpus = generator.generate(10)
        # 10 steps x 5 background docs (no events scheduled).
        assert len(corpus) == 50

    def test_documents_are_time_ordered(self):
        generator = SyntheticStreamGenerator(docs_per_step=10, seed=2)
        corpus = generator.generate(5)
        timestamps = [d.timestamp for d in corpus]
        assert timestamps == sorted(timestamps)

    def test_tags_come_from_vocabulary(self):
        vocabulary = news_vocabulary()
        generator = SyntheticStreamGenerator(vocabulary=vocabulary, docs_per_step=5, seed=3)
        corpus = generator.generate(3)
        allowed = set(vocabulary.tags())
        for document in corpus:
            assert document.tags <= allowed

    def test_event_injection_creates_cooccurring_documents(self):
        schedule = EventSchedule([
            EmergentEvent(name="shift", tags=("politics", "volcano"),
                          start=0.0, duration=10 * 3600.0, intensity=5.0, ramp=0.0),
        ])
        generator = SyntheticStreamGenerator(schedule=schedule, docs_per_step=5, seed=4)
        corpus = generator.generate(10)
        event_docs = corpus.with_tags("politics", "volcano")
        assert len(event_docs) > 5
        assert all(d.metadata.get("kind") == "event" for d in event_docs
                   if "event" in d.metadata.get("kind", ""))

    def test_no_event_documents_outside_event_window(self):
        schedule = EventSchedule([
            EmergentEvent(name="late", tags=("politics", "volcano"),
                          start=50 * 3600.0, duration=10 * 3600.0, intensity=5.0),
        ])
        generator = SyntheticStreamGenerator(schedule=schedule, docs_per_step=5, seed=5)
        corpus = generator.generate(10)  # only the first 10 hours
        assert all(d.metadata.get("kind") != "event" for d in corpus)

    def test_deterministic_for_fixed_seed(self):
        def ids(seed):
            generator = SyntheticStreamGenerator(docs_per_step=5, seed=seed)
            return [(d.doc_id, tuple(sorted(d.tags))) for d in generator.generate(5)]

        assert ids(9) == ids(9)

    def test_stream_yields_same_documents_as_generate(self):
        first = SyntheticStreamGenerator(docs_per_step=4, seed=6)
        second = SyntheticStreamGenerator(docs_per_step=4, seed=6)
        assert [d.doc_id for d in first.stream(4)] == [
            d.doc_id for d in second.generate(4)
        ]

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SyntheticStreamGenerator(docs_per_step=0)
        with pytest.raises(ValueError):
            SyntheticStreamGenerator(step=0.0)
        with pytest.raises(ValueError):
            SyntheticStreamGenerator(tags_per_doc=(0, 3))
        with pytest.raises(ValueError):
            SyntheticStreamGenerator().generate(0)


class TestFigure1Stream:
    def test_returns_corpus_and_ground_truth(self):
        corpus, schedule = figure1_stream()
        assert len(corpus) > 0
        assert len(schedule) == 1
        assert schedule.events()[0].pair == ("politics", "volcano")

    def test_overlap_grows_only_after_shift_start(self):
        corpus, _ = figure1_stream(num_steps=50, shift_start=25, shift_length=10)
        step = 3600.0
        before = corpus.between(0.0, 24 * step).with_tags("politics", "volcano")
        during = corpus.between(26 * step, 34 * step).with_tags("politics", "volcano")
        assert len(during) > 3 * max(len(before), 1)

    def test_popularity_peaks_do_not_change_overlap(self):
        corpus, _ = figure1_stream(num_steps=40, shift_start=30,
                                   popularity_peaks=(10,))
        step = 3600.0
        peak_docs = corpus.between(10 * step, 11 * step)
        popular_count = len(peak_docs.with_tag("politics"))
        overlap_count = len(peak_docs.with_tags("politics", "volcano"))
        assert popular_count > 15
        assert overlap_count <= 2

    def test_shift_start_must_be_inside_range(self):
        with pytest.raises(ValueError):
            figure1_stream(num_steps=10, shift_start=20)

    def test_deterministic(self):
        first, _ = figure1_stream(seed=5)
        second, _ = figure1_stream(seed=5)
        assert [d.doc_id for d in first] == [d.doc_id for d in second]


class TestCorrelationShiftStream:
    def test_returns_corpus_and_one_event_per_pair(self):
        corpus, schedule = correlation_shift_stream(num_events=3, num_steps=30,
                                                    shift_start=15, seed=1)
        assert len(schedule) == 3
        assert len(corpus) > 0
        assert len(set(schedule.pairs())) == 3

    def test_tag_frequencies_stay_constant_through_the_shift(self):
        step = 3600.0
        corpus, schedule = correlation_shift_stream(
            num_events=2, num_steps=40, shift_start=20, shift_length=10,
            popular_rate=6, rare_rate=3, seed=2)
        event = schedule.events()[0]
        popular, rare = event.pair if event.pair[0] != event.pair[1] else event.pair
        # Count per-step occurrences of each tag before and during the event.
        def rate(tag, start_step, end_step):
            selected = corpus.between(start_step * step, end_step * step - 1)
            return len(selected.with_tag(tag)) / (end_step - start_step)

        for tag in event.pair:
            before = rate(tag, 5, 15)
            during = rate(tag, 21, 29)
            assert abs(before - during) <= 1.0

    def test_cooccurrence_jumps_during_the_shift(self):
        step = 3600.0
        corpus, schedule = correlation_shift_stream(
            num_events=2, num_steps=40, shift_start=20, shift_length=10, seed=3)
        event = schedule.events()[0]
        before = corpus.between(0.0, 19 * step).with_tags(*event.pair)
        during = corpus.between(event.start, event.end).with_tags(*event.pair)
        assert len(during) > len(before)
        assert len(during) >= 10

    def test_events_are_staggered(self):
        _, schedule = correlation_shift_stream(num_events=3, num_steps=60,
                                               shift_start=30, stagger=5, seed=4)
        starts = sorted(event.start for event in schedule)
        assert starts[1] - starts[0] == pytest.approx(5 * 3600.0)

    def test_deterministic(self):
        first, _ = correlation_shift_stream(num_steps=20, shift_start=10, seed=9)
        second, _ = correlation_shift_stream(num_steps=20, shift_start=10, seed=9)
        assert [d.doc_id for d in first] == [d.doc_id for d in second]
        assert [d.tags for d in first] == [d.tags for d in second]

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            correlation_shift_stream(num_events=0)
        with pytest.raises(ValueError):
            correlation_shift_stream(num_steps=10, shift_start=20)
        with pytest.raises(ValueError):
            correlation_shift_stream(popular_rate=2, rare_rate=3)
        with pytest.raises(ValueError):
            correlation_shift_stream(shift_length=0)


class TestBatchIterators:
    def test_iter_batches_defaults_to_one_step_per_batch(self):
        generator = SyntheticStreamGenerator(docs_per_step=5, seed=3)
        batches = list(generator.iter_batches(4))
        assert len(batches) == 4
        assert all(len(batch) >= 5 for batch in batches)

    def test_iter_batches_rechunks_to_fixed_size(self):
        generator = SyntheticStreamGenerator(docs_per_step=5, seed=3)
        reference = [d.doc_id for d in
                     SyntheticStreamGenerator(docs_per_step=5, seed=3).stream(4)]
        batches = list(generator.iter_batches(4, batch_size=7))
        assert all(len(batch) == 7 for batch in batches[:-1])
        flattened = [d.doc_id for batch in batches for d in batch]
        assert flattened == reference

    def test_iter_batches_validates_batch_size(self):
        generator = SyntheticStreamGenerator(docs_per_step=5, seed=3)
        with pytest.raises(ValueError):
            list(generator.iter_batches(2, batch_size=0))

    def test_batches_are_time_ordered_across_boundaries(self):
        generator = SyntheticStreamGenerator(docs_per_step=5, seed=3)
        previous = None
        for batch in generator.iter_batches(6, batch_size=4):
            for document in batch:
                if previous is not None:
                    assert document.timestamp >= previous
                previous = document.timestamp
