"""Tests for the synthetic NYT-style archive."""

import pytest

from repro.datasets.nyt import (
    DAY,
    NytArchiveGenerator,
    default_historic_events,
    nyt_vocabulary,
)


class TestNytVocabulary:
    def test_demo_categories_present(self):
        vocabulary = nyt_vocabulary()
        assert "us elections" in vocabulary.categories()
        assert "hurricanes" in vocabulary.categories()
        assert "sports" in vocabulary.categories()


class TestDefaultHistoricEvents:
    def test_events_cover_demo_categories(self):
        schedule = default_historic_events(years=2.0)
        categories = {event.category for event in schedule}
        assert {"us elections", "hurricanes", "sports"} <= categories

    def test_includes_the_volcano_example(self):
        schedule = default_historic_events()
        pairs = schedule.pairs()
        assert ("air traffic", "volcano") in pairs

    def test_events_fit_inside_archive(self):
        years = 1.5
        schedule = default_historic_events(years=years)
        _, end = schedule.time_range()
        assert end <= years * 365 * DAY

    def test_event_times_scale_with_archive_length(self):
        short = default_historic_events(years=1.0)
        long = default_historic_events(years=4.0)
        assert long.events()[0].start == pytest.approx(4 * short.events()[0].start)

    def test_rejects_non_positive_years(self):
        with pytest.raises(ValueError):
            default_historic_events(years=0.0)


class TestNytArchiveGenerator:
    def test_generates_expected_volume(self):
        generator = NytArchiveGenerator(years=0.2, articles_per_day=10, seed=1)
        corpus, schedule = generator.generate()
        assert len(corpus) >= generator.num_days * 10
        assert len(schedule) > 0

    def test_documents_carry_nyt_style_tags(self):
        generator = NytArchiveGenerator(years=0.1, articles_per_day=8, seed=2)
        corpus, _ = generator.generate()
        allowed = set(nyt_vocabulary().tags())
        sample = list(corpus)[:200]
        for document in sample:
            assert document.tags <= allowed
            assert document.doc_id.startswith("nyt-")

    def test_event_documents_present_during_events(self):
        schedule = default_historic_events(years=0.5)
        generator = NytArchiveGenerator(years=0.5, articles_per_day=12,
                                        schedule=schedule, seed=3)
        corpus, _ = generator.generate()
        event = schedule.events()[0]
        during = corpus.between(event.start, event.end)
        pair_docs = during.with_tags(*event.pair)
        assert len(pair_docs) >= 3

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            NytArchiveGenerator(years=0.0)
        with pytest.raises(ValueError):
            NytArchiveGenerator(articles_per_day=0)

    def test_categories_listed(self):
        assert "sports" in NytArchiveGenerator(years=0.1).categories()


class TestBatchIterator:
    def test_iter_batches_replays_generate_exactly(self):
        generator = NytArchiveGenerator(years=0.05, articles_per_day=6, seed=5)
        corpus, _ = generator.generate()
        flattened = [d.doc_id for batch in generator.iter_batches(32)
                     for d in batch]
        assert flattened == [d.doc_id for d in corpus]

    def test_default_batches_are_daily_steps(self):
        generator = NytArchiveGenerator(years=0.02, articles_per_day=4, seed=5)
        assert len(list(generator.iter_batches())) == generator.num_days
