"""Tests for the synthetic RSS feeds."""

import pytest

from repro.datasets.rss import DEFAULT_FEEDS, RssFeedGenerator
from repro.datasets.vocabulary import news_vocabulary


class TestRssFeedGenerator:
    def test_default_feed_lineup(self):
        generator = RssFeedGenerator(hours=6, seed=1)
        assert set(generator.feed_names()) == set(DEFAULT_FEEDS)

    def test_generate_single_feed(self):
        generator = RssFeedGenerator(hours=6, posts_per_hour=4, seed=2)
        corpus = generator.generate_feed("sports-desk")
        assert len(corpus) >= 6 * 4
        assert all(d.doc_id.startswith("rss-sports-desk") for d in corpus)

    def test_feed_respects_its_thematic_slant(self):
        generator = RssFeedGenerator(hours=8, posts_per_hour=5, seed=3)
        corpus = generator.generate_feed("sports-desk")
        allowed = set(news_vocabulary().tags("sports"))
        for document in corpus:
            assert document.tags <= allowed

    def test_generate_all_returns_every_feed(self):
        generator = RssFeedGenerator(hours=4, posts_per_hour=3, seed=4)
        feeds = generator.generate_all()
        assert set(feeds) == set(DEFAULT_FEEDS)
        assert all(len(corpus) > 0 for corpus in feeds.values())

    def test_unknown_feed_raises(self):
        with pytest.raises(KeyError):
            RssFeedGenerator(hours=4).generate_feed("nope")

    def test_different_feeds_use_different_seeds(self):
        generator = RssFeedGenerator(hours=4, posts_per_hour=3, seed=5)
        world = generator.generate_feed("world-news-blog")
        tech = generator.generate_feed("tech-review")
        assert [d.tags for d in world] != [d.tags for d in tech]

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RssFeedGenerator(hours=0)
        with pytest.raises(ValueError):
            RssFeedGenerator(posts_per_hour=0)
        with pytest.raises(ValueError):
            RssFeedGenerator(feeds={})
