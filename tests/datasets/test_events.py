"""Tests for emergent events and the event schedule."""

import pytest

from repro.datasets.events import EmergentEvent, EventSchedule, canonical_pair


class TestCanonicalPair:
    def test_orders_lexicographically(self):
        assert canonical_pair("b", "a") == ("a", "b")
        assert canonical_pair("a", "b") == ("a", "b")

    def test_rejects_identical_tags(self):
        with pytest.raises(ValueError):
            canonical_pair("a", "a")


class TestEmergentEvent:
    def make(self, **overrides):
        defaults = dict(name="e", tags=("b", "a"), start=10.0, duration=10.0)
        defaults.update(overrides)
        return EmergentEvent(**defaults)

    def test_tags_are_canonicalised(self):
        assert self.make().pair == ("a", "b")

    def test_end_and_activity(self):
        event = self.make()
        assert event.end == 20.0
        assert not event.active_at(9.9)
        assert event.active_at(10.0)
        assert event.active_at(19.9)
        assert not event.active_at(20.0)

    def test_intensity_outside_window_is_zero(self):
        assert self.make(intensity=5.0).intensity_at(100.0) == 0.0

    def test_intensity_ramps_up(self):
        event = self.make(intensity=10.0, ramp=0.5)
        early = event.intensity_at(10.5)
        late = event.intensity_at(16.0)
        assert 0 < early < late
        assert late == pytest.approx(10.0)

    def test_zero_ramp_is_a_step(self):
        event = self.make(intensity=10.0, ramp=0.0)
        assert event.intensity_at(10.0) == 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make(name="")
        with pytest.raises(ValueError):
            self.make(tags=("a", "a"))
        with pytest.raises(ValueError):
            self.make(start=-1.0)
        with pytest.raises(ValueError):
            self.make(duration=0.0)
        with pytest.raises(ValueError):
            self.make(intensity=0.0)
        with pytest.raises(ValueError):
            self.make(ramp=1.5)


class TestEventSchedule:
    def make_schedule(self):
        return EventSchedule([
            EmergentEvent(name="one", tags=("a", "b"), start=0.0, duration=10.0,
                          category="sports"),
            EmergentEvent(name="two", tags=("c", "d"), start=20.0, duration=10.0,
                          category="politics"),
        ])

    def test_length_and_iteration(self):
        schedule = self.make_schedule()
        assert len(schedule) == 2
        assert [event.name for event in schedule] == ["one", "two"]

    def test_duplicate_names_rejected(self):
        schedule = self.make_schedule()
        with pytest.raises(ValueError):
            schedule.add(EmergentEvent(name="one", tags=("x", "y"), start=0.0, duration=1.0))

    def test_active_at(self):
        schedule = self.make_schedule()
        assert [event.name for event in schedule.active_at(5.0)] == ["one"]
        assert schedule.active_at(15.0) == []

    def test_by_category(self):
        schedule = self.make_schedule()
        assert [event.name for event in schedule.by_category("politics")] == ["two"]

    def test_pairs_and_onsets(self):
        schedule = self.make_schedule()
        assert schedule.pairs() == [("a", "b"), ("c", "d")]
        assert schedule.pair_onsets() == {("a", "b"): 0.0, ("c", "d"): 20.0}

    def test_time_range(self):
        assert self.make_schedule().time_range() == (0.0, 30.0)

    def test_time_range_of_empty_schedule_raises(self):
        with pytest.raises(ValueError):
            EventSchedule().time_range()
