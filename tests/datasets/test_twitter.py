"""Tests for the synthetic tweet stream."""

import pytest

from repro.datasets.events import EventSchedule
from repro.datasets.twitter import (
    HOUR,
    TweetStreamGenerator,
    sigmod_athens_event,
    twitter_vocabulary,
)


class TestSigmodAthensEvent:
    def test_pair_is_sigmod_athens(self):
        event = sigmod_athens_event()
        assert event.pair == ("athens", "sigmod")

    def test_timing_parameters(self):
        event = sigmod_athens_event(start_hour=10.0, duration_hours=5.0)
        assert event.start == 10 * HOUR
        assert event.end == 15 * HOUR


class TestTweetStreamGenerator:
    def test_generates_tweets_with_hashtags(self):
        corpus, schedule = TweetStreamGenerator(hours=12, tweets_per_hour=20, seed=1).generate()
        assert len(corpus) >= 12 * 20
        allowed = set(twitter_vocabulary().tags())
        for document in list(corpus)[:100]:
            assert document.tags <= allowed
            assert document.doc_id.startswith("tweet-")

    def test_default_schedule_includes_sigmod_event(self):
        _, schedule = TweetStreamGenerator(hours=6, seed=2).generate()
        assert ("athens", "sigmod") in schedule.pairs()

    def test_sigmod_event_can_be_disabled(self):
        _, schedule = TweetStreamGenerator(hours=6, include_sigmod_event=False, seed=3).generate()
        assert ("athens", "sigmod") not in schedule.pairs()

    def test_custom_schedule_is_respected(self):
        _, schedule = TweetStreamGenerator(hours=6, schedule=EventSchedule(), seed=4).generate()
        assert len(schedule) == 0

    def test_sigmod_tweets_appear_during_the_event(self):
        generator = TweetStreamGenerator(hours=50, tweets_per_hour=40, seed=5)
        corpus, schedule = generator.generate()
        event = next(e for e in schedule if e.name == "sigmod-athens")
        during = corpus.between(event.start, event.end).with_tags("sigmod", "athens")
        before = corpus.between(0.0, event.start - 1).with_tags("sigmod", "athens")
        assert len(during) > len(before)
        assert len(during) >= 5

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            TweetStreamGenerator(hours=0)
        with pytest.raises(ValueError):
            TweetStreamGenerator(tweets_per_hour=0)


class TestBatchIterator:
    def test_iter_batches_replays_generate_exactly(self):
        generator = TweetStreamGenerator(hours=6, tweets_per_hour=10, seed=5)
        corpus, _ = generator.generate()
        flattened = [d.doc_id for batch in generator.iter_batches(16)
                     for d in batch]
        assert flattened == [d.doc_id for d in corpus]

    def test_default_batches_are_hourly_steps(self):
        generator = TweetStreamGenerator(hours=5, tweets_per_hour=8, seed=5)
        assert len(list(generator.iter_batches())) == 5
