"""Tests for the document and corpus containers."""

import pytest

from repro.datasets.documents import Corpus, Document


def doc(t, doc_id, tags):
    return Document(timestamp=float(t), doc_id=doc_id, tags=frozenset(tags))


class TestDocument:
    def test_validation(self):
        with pytest.raises(ValueError):
            Document(timestamp=-1.0, doc_id="d")
        with pytest.raises(ValueError):
            Document(timestamp=1.0, doc_id="")

    def test_tags_become_frozenset(self):
        document = Document(timestamp=1.0, doc_id="d", tags=["a", "a"])
        assert document.tags == frozenset({"a"})

    def test_has_tags(self):
        document = doc(1, "d", {"a", "b"})
        assert document.has_tags("a")
        assert document.has_tags("a", "b")
        assert not document.has_tags("a", "c")


class TestCorpus:
    def test_add_in_time_order(self):
        corpus = Corpus()
        corpus.add(doc(1, "a", {"x"}))
        corpus.add(doc(2, "b", {"y"}))
        assert len(corpus) == 2
        assert corpus[0].doc_id == "a"

    def test_out_of_order_add_rejected(self):
        corpus = Corpus([doc(5, "a", {"x"})])
        with pytest.raises(ValueError):
            corpus.add(doc(1, "b", {"y"}))

    def test_between_is_inclusive(self):
        corpus = Corpus([doc(t, f"d{t}", {"x"}) for t in range(5)])
        selected = corpus.between(1.0, 3.0)
        assert [d.timestamp for d in selected] == [1.0, 2.0, 3.0]

    def test_between_rejects_reversed_range(self):
        with pytest.raises(ValueError):
            Corpus().between(5.0, 1.0)

    def test_with_tag_and_with_tags(self):
        corpus = Corpus([
            doc(1, "a", {"x", "y"}),
            doc(2, "b", {"x"}),
            doc(3, "c", {"z"}),
        ])
        assert len(corpus.with_tag("x")) == 2
        assert len(corpus.with_tags("x", "y")) == 1

    def test_tags_lists_distinct_sorted_tags(self):
        corpus = Corpus([doc(1, "a", {"b", "a"}), doc(2, "c", {"a"})])
        assert corpus.tags() == ["a", "b"]

    def test_time_range(self):
        corpus = Corpus([doc(3, "a", {"x"}), doc(9, "b", {"y"})])
        assert corpus.time_range() == (3.0, 9.0)

    def test_time_range_of_empty_corpus_raises(self):
        with pytest.raises(ValueError):
            Corpus().time_range()

    def test_iteration(self):
        corpus = Corpus([doc(1, "a", {"x"})])
        assert [d.doc_id for d in corpus] == ["a"]


class TestCorpusBatches:
    def test_iter_batches_covers_corpus_in_order(self):
        corpus = Corpus([doc(t, f"d{t}", {"x"}) for t in range(10)])
        batches = list(corpus.iter_batches(4))
        assert [len(b) for b in batches] == [4, 4, 2]
        flattened = [d.doc_id for batch in batches for d in batch]
        assert flattened == [d.doc_id for d in corpus]

    def test_iter_batches_validates_batch_size(self):
        with pytest.raises(ValueError):
            list(Corpus().iter_batches(0))
