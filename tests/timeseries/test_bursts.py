"""Tests for burst detection."""

import pytest

from repro.timeseries.bursts import BurstDetector, BurstEvent, MeanDeviationBurstModel


class TestMeanDeviationBurstModel:
    def test_no_score_with_short_history(self):
        model = MeanDeviationBurstModel(min_history=4)
        assert model.score([1.0, 1.0], 100.0) == 0.0

    def test_value_below_mean_scores_zero(self):
        model = MeanDeviationBurstModel()
        assert model.score([10.0] * 10, 5.0) == 0.0

    def test_large_spike_scores_high(self):
        model = MeanDeviationBurstModel(threshold=3.0)
        history = [10.0, 11.0, 9.0, 10.0, 10.0, 11.0, 9.0, 10.0]
        assert model.score(history, 40.0) >= 3.0
        assert model.is_burst(history, 40.0)

    def test_small_increase_is_not_a_burst(self):
        model = MeanDeviationBurstModel(threshold=3.0)
        history = [10.0, 11.0, 9.0, 10.0, 10.0, 11.0, 9.0, 10.0]
        assert not model.is_burst(history, 12.0)

    def test_constant_history_does_not_divide_by_zero(self):
        model = MeanDeviationBurstModel()
        score = model.score([5.0] * 10, 50.0)
        assert score > 0
        assert score < float("inf")

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            MeanDeviationBurstModel(history=0)
        with pytest.raises(ValueError):
            MeanDeviationBurstModel(threshold=0.0)
        with pytest.raises(ValueError):
            MeanDeviationBurstModel(min_history=1)


class TestBurstEvent:
    def test_rejects_negative_score(self):
        with pytest.raises(ValueError):
            BurstEvent(key="a", timestamp=0.0, value=1.0, baseline=1.0, score=-1.0)


class TestBurstDetector:
    def test_detects_burst_after_stable_history(self):
        detector = BurstDetector(MeanDeviationBurstModel(threshold=3.0))
        for t in range(10):
            assert detector.observe("tag", float(t), 10.0) is None
        event = detector.observe("tag", 10.0, 60.0)
        assert event is not None
        assert event.key == "tag"
        assert event.score >= 3.0

    def test_independent_series_per_key(self):
        detector = BurstDetector(MeanDeviationBurstModel(threshold=3.0))
        for t in range(10):
            detector.observe("quiet", float(t), 10.0)
            detector.observe("noisy", float(t), 10.0)
        detector.observe("noisy", 10.0, 100.0)
        assert detector.bursting_keys() == ["noisy"]

    def test_events_filtered_by_key_and_time(self):
        detector = BurstDetector(MeanDeviationBurstModel(threshold=2.0))
        for t in range(10):
            detector.observe("a", float(t), 5.0)
        detector.observe("a", 10.0, 50.0)
        assert len(detector.events("a")) == 1
        assert detector.events("b") == []
        assert detector.bursting_keys(since=20.0) == []

    def test_history_is_bounded(self):
        detector = BurstDetector(MeanDeviationBurstModel(history=10))
        for t in range(200):
            detector.observe("tag", float(t), 1.0)
        assert len(detector.history("tag")) <= 40

    def test_no_burst_for_steady_growth_within_noise(self):
        detector = BurstDetector(MeanDeviationBurstModel(threshold=3.0))
        values = [10, 11, 10, 12, 11, 10, 11, 12, 11, 12]
        events = [detector.observe("tag", float(t), float(v)) for t, v in enumerate(values)]
        assert all(event is None for event in events)
