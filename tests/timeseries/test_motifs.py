"""Tests for online motif discovery."""

import math

import pytest

from repro.timeseries.motifs import Motif, MotifDiscovery


class TestMotif:
    def test_validation(self):
        with pytest.raises(ValueError):
            Motif(first_start=-1, second_start=0, length=4, distance=0.0)
        with pytest.raises(ValueError):
            Motif(first_start=0, second_start=1, length=0, distance=0.0)
        with pytest.raises(ValueError):
            Motif(first_start=0, second_start=1, length=4, distance=-1.0)


class TestMotifDiscovery:
    def test_needs_enough_points_before_reporting(self):
        discovery = MotifDiscovery(window=4)
        for value in [1.0, 2.0, 3.0]:
            assert discovery.append(value) is None
        assert discovery.best_motif is None

    def test_finds_repeating_pattern(self):
        # Two identical sine periods separated by noise: the best motif should
        # align one period with the other at (near) zero distance.
        period = [math.sin(2 * math.pi * i / 8) for i in range(8)]
        noise = [5.0, -3.0, 7.0, 0.5, -2.0, 4.0, 1.0, -1.0]
        series = period + noise + period
        discovery = MotifDiscovery(window=8)
        best = discovery.extend(series)
        assert best is not None
        assert best.distance < 0.5
        assert abs(best.second_start - best.first_start) >= 8

    def test_exclusion_zone_prevents_trivial_matches(self):
        discovery = MotifDiscovery(window=4, exclusion=4)
        discovery.extend([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        best = discovery.best_motif
        if best is not None:
            assert abs(best.second_start - best.first_start) >= 4

    def test_window_validation(self):
        with pytest.raises(ValueError):
            MotifDiscovery(window=1)

    def test_length_counts_observations(self):
        discovery = MotifDiscovery(window=4)
        discovery.extend([1.0, 2.0, 3.0])
        assert len(discovery) == 3

    def test_constant_series_matches_itself(self):
        discovery = MotifDiscovery(window=4)
        best = discovery.extend([3.0] * 16)
        assert best is not None
        assert best.distance == pytest.approx(0.0)
