"""Tests for the one-step-ahead predictors."""

import pytest

from repro.timeseries.predictors import (
    EwmaPredictor,
    HoltPredictor,
    LastValuePredictor,
    LinearTrendPredictor,
    MovingAveragePredictor,
    available_predictors,
    make_predictor,
)


class TestLastValuePredictor:
    def test_predicts_last_value(self):
        assert LastValuePredictor().predict([1.0, 2.0, 7.0]) == 7.0

    def test_empty_history_rejected(self):
        with pytest.raises(ValueError):
            LastValuePredictor().predict([])


class TestMovingAveragePredictor:
    def test_mean_of_window(self):
        predictor = MovingAveragePredictor(window=3)
        assert predictor.predict([1.0, 2.0, 3.0, 4.0]) == pytest.approx(3.0)

    def test_short_history_uses_everything(self):
        predictor = MovingAveragePredictor(window=10)
        assert predictor.predict([2.0, 4.0]) == pytest.approx(3.0)

    def test_rejects_non_positive_window(self):
        with pytest.raises(ValueError):
            MovingAveragePredictor(window=0)

    def test_constant_series_predicted_exactly(self):
        predictor = MovingAveragePredictor(window=4)
        assert predictor.predict([5.0] * 10) == pytest.approx(5.0)


class TestEwmaPredictor:
    def test_constant_series_predicted_exactly(self):
        assert EwmaPredictor(alpha=0.5).predict([3.0, 3.0, 3.0]) == pytest.approx(3.0)

    def test_recent_values_weigh_more(self):
        predictor = EwmaPredictor(alpha=0.8)
        prediction = predictor.predict([0.0, 0.0, 0.0, 10.0])
        assert prediction > 7.0

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            EwmaPredictor(alpha=0.0)
        with pytest.raises(ValueError):
            EwmaPredictor(alpha=1.5)

    def test_alpha_one_equals_last_value(self):
        assert EwmaPredictor(alpha=1.0).predict([1.0, 9.0]) == pytest.approx(9.0)


class TestLinearTrendPredictor:
    def test_extrapolates_linear_series(self):
        predictor = LinearTrendPredictor(window=5)
        assert predictor.predict([1.0, 2.0, 3.0, 4.0]) == pytest.approx(5.0)

    def test_constant_series_stays_constant(self):
        predictor = LinearTrendPredictor(window=5)
        assert predictor.predict([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            LinearTrendPredictor().predict([1.0])

    def test_window_validation(self):
        with pytest.raises(ValueError):
            LinearTrendPredictor(window=1)


class TestHoltPredictor:
    def test_follows_linear_trend(self):
        predictor = HoltPredictor(alpha=0.8, beta=0.8)
        prediction = predictor.predict([1.0, 2.0, 3.0, 4.0, 5.0])
        assert prediction == pytest.approx(6.0, abs=0.5)

    def test_constant_series(self):
        predictor = HoltPredictor()
        assert predictor.predict([4.0, 4.0, 4.0, 4.0]) == pytest.approx(4.0, abs=0.1)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            HoltPredictor().predict([1.0])

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            HoltPredictor(alpha=0.0)
        with pytest.raises(ValueError):
            HoltPredictor(beta=2.0)


class TestRegistry:
    def test_all_predictors_listed(self):
        assert set(available_predictors()) == {
            "last", "moving_average", "ewma", "linear", "holt",
        }

    def test_make_predictor_by_name(self):
        assert isinstance(make_predictor("ewma", alpha=0.5), EwmaPredictor)
        assert isinstance(make_predictor("holt"), HoltPredictor)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_predictor("oracle")

    def test_can_predict_respects_min_history(self):
        assert not LinearTrendPredictor().can_predict([1.0])
        assert LinearTrendPredictor().can_predict([1.0, 2.0])
