"""Tiered tracking under the sharded engine.

Admission runs once, globally, in the coordinator, so a tiered sharded
run must publish the exact ranking sequence of the tiered single engine
— for every shard count and backend — and a tiered checkpoint must
restore into a different shard count without perturbing a value.
"""

import pytest

from repro.core.config import live_stream_config
from repro.core.engine import EnBlogue
from repro.datasets.twitter import TweetStreamGenerator
from repro.persistence.resume import load_engine
from repro.persistence.snapshot import SnapshotMismatchError
from repro.sharding import ShardedEnBlogue

TIERED = live_stream_config().with_overrides(
    tracking="tiered", promote_support=3
)


def stream(hours=12, seed=11):
    corpus, _ = TweetStreamGenerator(
        hours=hours, tweets_per_hour=40, seed=seed
    ).generate()
    return list(corpus)


def ranking_signature(engine):
    return [
        [(topic.pair, topic.score) for topic in ranking.topics]
        for ranking in engine.ranking_history()
    ]


def replay_single(config, docs):
    engine = EnBlogue(config)
    for document in docs:
        engine.process(document)
    engine.evaluate_now()
    return ranking_signature(engine)


def replay_sharded(config, docs, num_shards, backend="serial",
                   chunk_size=32):
    engine = ShardedEnBlogue(
        config, num_shards=num_shards, backend=backend,
        chunk_size=chunk_size,
    )
    try:
        for document in docs:
            engine.process(document)
        engine.evaluate_now()
        return ranking_signature(engine)
    finally:
        engine.close()


class TestTieredParity:
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_serial_matches_single(self, num_shards):
        docs = stream()
        assert replay_sharded(
            TIERED, docs, num_shards
        ) == replay_single(TIERED, docs)

    def test_threads_matches_single(self):
        docs = stream()
        assert replay_sharded(
            TIERED, docs, 2, backend="threads"
        ) == replay_single(TIERED, docs)

    def test_runtime_info_names_the_mode(self):
        engine = ShardedEnBlogue(TIERED, num_shards=2)
        try:
            info = engine.runtime_info()
            assert info["tracking"] == "tiered"
            assert info["promote_support"] == 3
        finally:
            engine.close()


class TestTieredCheckpoint:
    def test_n_to_m_resume_is_bit_identical(self, tmp_path):
        docs = stream()
        expected = replay_sharded(TIERED, docs, 2)

        first = ShardedEnBlogue(TIERED, num_shards=2, chunk_size=32)
        half = len(docs) // 2
        try:
            for document in docs[:half]:
                first.process(document)
            first.save_checkpoint(tmp_path)
        finally:
            first.close()

        resumed, _ = load_engine(tmp_path, num_shards=4)
        try:
            skip = resumed.documents_processed
            for document in docs[skip:]:
                resumed.process(document)
            resumed.evaluate_now()
            assert ranking_signature(resumed) == expected
        finally:
            resumed.close()

    def test_tier_state_rides_the_snapshot(self):
        docs = stream(hours=6)
        engine = ShardedEnBlogue(TIERED, num_shards=2, chunk_size=32)
        try:
            for document in docs:
                engine.process(document)
            state = engine.snapshot()
        finally:
            engine.close()
        assert state["tier"]["kind"] == "sketch-tier"
        assert state["tier"]["promote_support"] == 3

    def test_mode_mismatch_is_rejected(self):
        docs = stream(hours=6)
        tiered = ShardedEnBlogue(TIERED, num_shards=2, chunk_size=32)
        try:
            for document in docs:
                tiered.process(document)
            state = tiered.snapshot()
        finally:
            tiered.close()
        exact = ShardedEnBlogue(live_stream_config(), num_shards=2)
        try:
            with pytest.raises(SnapshotMismatchError):
                exact.restore(state)
        finally:
            exact.close()

    def test_exact_snapshot_has_no_tier_key(self):
        engine = ShardedEnBlogue(live_stream_config(), num_shards=2)
        try:
            for document in stream(hours=3):
                engine.process(document)
            assert "tier" not in engine.snapshot()
        finally:
            engine.close()
