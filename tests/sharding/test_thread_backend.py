"""The threads shard backend: equivalence, error surfacing and lifecycle.

Mirrors the process-backend suite: same sticky-ingest-failure contract,
same loud use-after-close behaviour, plus the thread-specific guarantees —
zero serialization (workers receive the coordinator's live objects) and a
striped coordinator tag window whose merged counts stay exact.
"""

import pytest

from repro.core.config import EnBlogueConfig
from repro.core.engine import EnBlogue
from repro.core.types import TagPair
from repro.datasets.documents import Document
from repro.datasets.twitter import TweetStreamGenerator
from repro.sharding import ShardedEnBlogue, make_backend
from repro.sharding.backends import ShardExecutionError, ThreadBackend
from repro.sharding.worker import ShardWorker

HOUR = 3600.0


def config(**overrides):
    defaults = dict(
        window_horizon=6 * HOUR,
        evaluation_interval=HOUR,
        num_seeds=10,
        min_seed_count=1,
        min_pair_support=1,
        min_history=2,
        predictor="moving_average",
        predictor_window=3,
    )
    defaults.update(overrides)
    return EnBlogueConfig(**defaults)


def signature(engine):
    return [
        (ranking.timestamp, ranking.label, ranking.topics)
        for ranking in engine.ranking_history()
    ]


def doc(t, tags):
    return Document(timestamp=float(t), doc_id=f"doc-{t}", tags=frozenset(tags))


@pytest.fixture(scope="module")
def tweet_docs():
    corpus, _ = TweetStreamGenerator(hours=24, tweets_per_hour=60,
                                     seed=7).generate()
    return list(corpus)


def single_reference(docs, cfg):
    engine = EnBlogue(cfg)
    engine.process_batch(docs)
    engine.evaluate_now()
    return engine


class TestThreadBackendEquivalence:
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_twitter_stream_rankings_bit_identical(self, tweet_docs, num_shards):
        cfg = config()
        reference = single_reference(tweet_docs, cfg)
        with ShardedEnBlogue(cfg, num_shards=num_shards,
                             backend="threads", chunk_size=128) as sharded:
            sharded.process_batch(tweet_docs)
            sharded.evaluate_now()
            assert signature(sharded) == signature(reference)

    def test_checkpoint_restore_mid_stream_stays_identical(self, tweet_docs):
        docs = tweet_docs[:600]
        cfg = config()
        reference = single_reference(docs, cfg)
        cut = len(docs) // 2
        with ShardedEnBlogue(cfg, num_shards=2, backend="threads") as first:
            first.process_batch(docs[:cut])
            state = first.snapshot()
        with ShardedEnBlogue(cfg, num_shards=2, backend="threads") as second:
            second.restore(state)
            second.process_batch(docs[cut:])
            second.evaluate_now()
            final = second.ranking_history()[-1]
        assert final == reference.ranking_history()[-1]


class TestThreadBackendLifecycle:
    def test_registered_with_make_backend(self):
        backend = make_backend("threads")
        assert isinstance(backend, ThreadBackend)
        assert backend.name == "threads"

    def test_worker_failure_is_sticky_and_surfaces_at_evaluation(self):
        # An out-of-order chunk poisons the worker; the fire-and-forget
        # ingest defers the error to the next synchronisation point.
        backend = ThreadBackend()
        backend.start([ShardWorker(0, config())])
        try:
            backend.ingest([[(10.0, (TagPair("a", "b"),))]])
            backend.ingest([[(5.0, (TagPair("a", "c"),))]])
            with pytest.raises(ShardExecutionError,
                               match="shard 0 failed during evaluate"):
                backend.evaluate(11.0, ["a"], {"a": 2, "b": 1, "c": 1}, 2)
        finally:
            backend.close()

    def test_failed_gather_tears_the_pool_down(self):
        backend = ThreadBackend()
        backend.start([ShardWorker(0, config()), ShardWorker(1, config())])
        backend.ingest([[(10.0, (TagPair("a", "b"),))], []])
        backend.ingest([[(5.0, (TagPair("a", "c"),))], []])
        with pytest.raises(ShardExecutionError, match="shard 0"):
            backend.stats()
        # The gather closed the backend; further use raises, not hangs.
        assert backend._threads == []
        with pytest.raises(ShardExecutionError, match="closed"):
            backend.stats()

    def test_close_is_idempotent(self):
        with ShardedEnBlogue(config(), num_shards=2,
                             backend="threads") as sharded:
            sharded.process(doc(0, ["a", "b"]))
            sharded.close()
        sharded.close()

    def test_use_after_close_raises_instead_of_publishing_empty(self):
        sharded = ShardedEnBlogue(config(), num_shards=2, backend="threads")
        sharded.process(doc(0, ["a", "b"]))
        sharded.close()
        with pytest.raises(RuntimeError, match="closed"):
            sharded.process(doc(10, ["a", "c"]))
        with pytest.raises(RuntimeError, match="closed"):
            sharded.evaluate_now(10.0)
        assert sharded.ranking_history() == []

    def test_workers_receive_live_objects_not_copies(self):
        # Zero-copy contract: the exact event tuples posted by the
        # coordinator reach the worker without pickling.
        witnessed = []

        class Recording(ShardWorker):
            def ingest(self, events):
                witnessed.extend(id(event) for event in events)
                return super().ingest(events)

        backend = ThreadBackend()
        backend.start([Recording(0, config())])
        try:
            event = (10.0, (TagPair("a", "b"),))
            backend.ingest([[event]])
            backend.stats()  # synchronisation barrier
            assert witnessed == [id(event)]
        finally:
            backend.close()

    def test_shard_stats_report_evaluation_path(self, tweet_docs):
        with ShardedEnBlogue(config(), num_shards=2,
                             backend="threads") as sharded:
            sharded.process_batch(tweet_docs[:200])
            stats = sharded.shard_stats()
            assert [entry["shard_id"] for entry in stats] == [0, 1]
            assert all(
                entry["evaluation_path"] in ("vectorized", "scalar")
                for entry in stats
            )

    def test_runtime_info_names_backend_and_path(self):
        with ShardedEnBlogue(config(), num_shards=2,
                             backend="threads") as sharded:
            info = sharded.runtime_info()
        assert info["engine"] == "sharded"
        assert info["backend"] == "threads"
        assert info["shards"] == 2
        assert info["evaluation_path"] in ("vectorized", "scalar")


class TestThreadBackendDeadWorker:
    """A worker thread that dies mid-run must surface loudly, never hang.

    The kills are scripted through the counted fault hooks: the worker
    processes its last chunk, then stops — exactly the shape of an
    uncaught exception in worker code or a runaway thread being reaped.
    """

    def _killed_backend(self, after_batches=1, shards=2):
        from repro.faults import FaultPlan

        backend = ThreadBackend()
        backend.bind_fault_plan(
            FaultPlan().kill_worker(0, after_batches=after_batches))
        backend.start([ShardWorker(i, config()) for i in range(shards)])
        return backend

    def test_kill_mid_ingest_surfaces_at_next_sync_point(self):
        backend = self._killed_backend()
        try:
            backend.ingest([[(10.0, (TagPair("a", "b"),))], []])
            # Fire-and-forget: posting to the dead worker's mailbox does
            # not raise, the next gather does — promptly, no timeout.
            backend.ingest([[(20.0, (TagPair("a", "c"),))], []])
            with pytest.raises(ShardExecutionError, match="shard 0"):
                backend.evaluate(21.0, ["a"], {"a": 2, "b": 1, "c": 1}, 2)
        finally:
            backend.close()

    def test_kill_mid_gather_tears_the_pool_down(self):
        backend = self._killed_backend()
        try:
            backend.ingest([[(10.0, (TagPair("a", "b"),))],
                            [(10.0, (TagPair("c", "d"),))]])
            with pytest.raises(ShardExecutionError, match="shard 0"):
                backend.stats()
            assert backend._threads == []
            with pytest.raises(ShardExecutionError, match="closed"):
                backend.stats()
        finally:
            backend.close()

    def test_kill_mid_collect_states_raises_not_hangs(self):
        backend = self._killed_backend()
        try:
            backend.ingest([[(10.0, (TagPair("a", "b"),))], []])
            with pytest.raises(ShardExecutionError, match="shard 0"):
                backend.collect_states()
        finally:
            backend.close()

    def test_dead_worker_detection_is_prompt(self):
        # The gather loop polls thread liveness: once the thread is gone
        # it stops waiting on the reply event instead of riding out the
        # full timeout — the suite itself is the regression test (a hang
        # here would blow the test timeout, not just fail).
        backend = self._killed_backend(after_batches=2)
        try:
            backend.ingest([[(10.0, (TagPair("a", "b"),))], []])
            backend.stats()  # worker still alive after batch one
            backend.ingest([[(20.0, (TagPair("a", "c"),))], []])
            with pytest.raises(ShardExecutionError, match="shard 0"):
                backend.stats()
        finally:
            backend.close()
