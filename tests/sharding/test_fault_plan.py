"""The deterministic fault-injection harness: counting, specs, torn tails.

Everything here is counted, not timed — a fault fires on matching events
``after+1 .. after+times`` of its own counter, so the same plan against
the same stream always strikes the same dispatch.  No real clock is
involved anywhere in this module.
"""

import json

import pytest

from repro.core.config import EnBlogueConfig
from repro.core.engine import EnBlogue
from repro.datasets.twitter import TweetStreamGenerator
from repro.faults import Fault, FaultPlan, tear_journal_tail

HOUR = 3600.0


def config(**overrides):
    defaults = dict(
        window_horizon=6 * HOUR,
        evaluation_interval=HOUR,
        num_seeds=10,
        min_seed_count=1,
        min_pair_support=1,
        min_history=2,
        predictor="moving_average",
        predictor_window=3,
    )
    defaults.update(overrides)
    return EnBlogueConfig(**defaults)


class TestFaultValidation:
    def test_rejects_unknown_site_and_action(self):
        with pytest.raises(ValueError, match="site"):
            Fault(site="teleport", action="raise")
        with pytest.raises(ValueError, match="action"):
            Fault(site="dispatch", action="explode")

    def test_rejects_bad_windows_and_exceptions(self):
        with pytest.raises(ValueError, match="after"):
            Fault(site="dispatch", action="raise", after=-1)
        with pytest.raises(ValueError, match="after"):
            Fault(site="dispatch", action="raise", times=0)
        with pytest.raises(ValueError, match="exception"):
            Fault(site="dispatch", action="raise", exception="boom")
        with pytest.raises(ValueError, match="seconds"):
            Fault(site="gather", action="delay", seconds=-1.0)


class TestCountingSemantics:
    def test_fires_exactly_in_the_window(self):
        fault = Fault(site="dispatch", action="raise", after=2, times=2)
        # Events 1,2 pass; 3,4 fire; 5+ pass again.
        assert [fault.fires() for _ in range(6)] == [
            False, False, True, True, False, False,
        ]

    def test_shard_and_operation_filters_gate_the_counter(self):
        plan = FaultPlan().fail_dispatch(
            shard=1, after=1, operation="ingest")
        # Non-matching shards and operations never advance the counter.
        plan.on_dispatch(0, "ingest")
        plan.on_dispatch(1, "evaluate")
        plan.on_dispatch(1, "ingest")  # seen=1, still before the window
        with pytest.raises(BrokenPipeError):
            plan.on_dispatch(1, "ingest")  # seen=2, fires
        plan.on_dispatch(1, "ingest")  # window consumed
        assert plan.fired() == 1

    def test_kill_worker_counts_ingest_batches(self):
        plan = FaultPlan().kill_worker(0, after_batches=3)
        verdicts = [plan.on_dispatch(0, "ingest") for _ in range(4)]
        assert verdicts == [None, None, "kill", None]

    def test_delay_gather_uses_the_injected_sleep(self):
        slept = []
        plan = FaultPlan(sleep=slept.append).delay_gather(
            shard=0, seconds=2.5)
        plan.on_gather(0)
        plan.on_gather(0)
        assert slept == [2.5]

    def test_fail_gather_raises_at_the_gather_site_only(self):
        plan = FaultPlan().fail_gather(shard=0, exception=EOFError)
        assert plan.on_dispatch(0, "ingest") is None
        with pytest.raises(EOFError):
            plan.on_gather(0)

    def test_reset_rewinds_every_counter(self):
        plan = FaultPlan().fail_dispatch(shard=0)
        with pytest.raises(BrokenPipeError):
            plan.on_dispatch(0, "ingest")
        plan.on_dispatch(0, "ingest")
        plan.reset()
        with pytest.raises(BrokenPipeError):
            plan.on_dispatch(0, "ingest")


class TestSpecRoundTrip:
    def test_plan_survives_json_round_trip(self):
        plan = (
            FaultPlan()
            .kill_worker(1, after_batches=2)
            .fail_dispatch(shard=0, exception=ConnectionResetError,
                           after=3, times=2, operation="evaluate")
            .delay_gather(shard=2, seconds=1.5)
        )
        spec = json.loads(json.dumps(plan.to_spec()))
        rebuilt = FaultPlan.from_spec(spec)
        assert rebuilt.to_spec() == plan.to_spec()
        assert rebuilt.faults[1].exception is ConnectionResetError

    def test_from_spec_rejects_non_lists_and_unknown_exceptions(self):
        with pytest.raises(ValueError, match="JSON list"):
            FaultPlan.from_spec({"site": "dispatch"})
        with pytest.raises(ValueError, match="unknown exception"):
            Fault.from_spec({"site": "dispatch", "action": "raise",
                             "exception": "NoSuchError"})

    def test_from_env_inline_json_file_path_and_absent(self, tmp_path):
        spec = FaultPlan().kill_worker(0).to_spec()
        inline = {"REPRO_FAULT_PLAN": json.dumps(spec)}
        plan = FaultPlan.from_env(environ=inline)
        assert plan is not None and plan.to_spec() == spec

        path = tmp_path / "plan.json"
        path.write_text(json.dumps(spec), "utf-8")
        plan = FaultPlan.from_env(environ={"REPRO_FAULT_PLAN": str(path)})
        assert plan is not None and plan.to_spec() == spec

        assert FaultPlan.from_env(environ={}) is None
        assert FaultPlan.from_env(environ={"REPRO_FAULT_PLAN": "  "}) is None


class TestTearJournalTail:
    def test_truncates_the_newest_segment(self, tmp_path):
        corpus, _ = TweetStreamGenerator(hours=8, tweets_per_hour=40,
                                         seed=11).generate()
        docs = list(corpus)
        engine = EnBlogue(config())
        engine.process_batch(docs[:150])
        engine.save_checkpoint(tmp_path, track_deltas=True)
        engine.process_batch(docs[150:300])
        engine.save_delta_checkpoint(tmp_path)

        segments = sorted(tmp_path.glob("engine-*.delta"))
        assert segments
        before = segments[-1].stat().st_size
        path, after = tear_journal_tail(tmp_path, cut=16)
        assert path == segments[-1]
        assert after == before - 16 == path.stat().st_size

    def test_raises_without_a_journal(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            tear_journal_tail(tmp_path)
