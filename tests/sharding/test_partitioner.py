"""Unit tests for the stable pair partitioner."""

import pytest

from repro.core.types import TagPair
from repro.sharding.partitioner import PairPartitioner


class TestPairPartitioner:
    def test_validation(self):
        with pytest.raises(ValueError):
            PairPartitioner(0)

    def test_single_shard_owns_everything(self):
        partitioner = PairPartitioner(1)
        assert partitioner.shard_of(TagPair("a", "b")) == 0
        assert partitioner.shard_of(TagPair("x", "y")) == 0

    def test_shard_ids_in_range(self):
        partitioner = PairPartitioner(4)
        for i in range(50):
            shard = partitioner.shard_of(TagPair(f"tag{i}", f"tag{i + 1}"))
            assert 0 <= shard < 4

    def test_assignment_is_stable_across_instances(self):
        # A pure function of the canonical pair: two partitioners (or two
        # processes) must always agree.
        first = PairPartitioner(8)
        second = PairPartitioner(8)
        pairs = [TagPair(f"t{i}", f"t{i + 7}") for i in range(100)]
        assert [first.shard_of(p) for p in pairs] \
            == [second.shard_of(p) for p in pairs]

    def test_canonicalisation_makes_spelling_irrelevant(self):
        partitioner = PairPartitioner(5)
        assert partitioner.shard_of(TagPair("beta", "alpha")) \
            == partitioner.shard_of(TagPair("alpha", "beta"))

    def test_split_groups_by_owner_and_preserves_order(self):
        partitioner = PairPartitioner(3)
        pairs = [TagPair(f"a{i}", f"b{i}") for i in range(30)]
        split = partitioner.split(pairs)
        assert sum(len(v) for v in split.values()) == len(pairs)
        for shard_id, shard_pairs in split.items():
            assert all(partitioner.shard_of(p) == shard_id for p in shard_pairs)
            # Order within a shard follows input order.
            indices = [pairs.index(p) for p in shard_pairs]
            assert indices == sorted(indices)

    def test_split_event_carries_timestamp_and_tuples(self):
        partitioner = PairPartitioner(2)
        pairs = (TagPair("a", "b"), TagPair("c", "d"), TagPair("e", "f"))
        events = partitioner.split_event(42.0, pairs)
        seen = []
        for shard_id, (timestamp, shard_pairs) in events:
            assert timestamp == 42.0
            assert isinstance(shard_pairs, tuple)
            seen.extend(shard_pairs)
        assert sorted(seen) == sorted(pairs)

    def test_distribution_is_not_degenerate(self):
        # CRC-32 over a realistic vocabulary should touch every shard.
        partitioner = PairPartitioner(4)
        shards = {
            partitioner.shard_of(TagPair(f"tag{i:03d}", f"tag{j:03d}"))
            for i in range(20) for j in range(i + 1, 20)
        }
        assert shards == {0, 1, 2, 3}
