"""Worker-side telemetry: per-shard stage timings and shipped logs.

Shard workers time their own ingest/evaluate work and queue structured
log records; the telemetry piggybacks on the ordinary reply messages
(no extra round-trips) and lands in the coordinator's
``repro_sharding_shard_stage_seconds{shard=,stage=}`` histogram and
event log — for every backend, including the process one where the
worker lives in another address space.
"""

import pytest

from repro.core.config import EnBlogueConfig
from repro.datasets.twitter import TweetStreamGenerator
from repro.observability import Observability
from repro.sharding import ShardedEnBlogue
from repro.sharding.worker import ShardWorker

TELEMETRY_CAPACITY = ShardWorker.TELEMETRY_CAPACITY

HOUR = 3600.0


def config(**overrides):
    defaults = dict(
        window_horizon=6 * HOUR,
        evaluation_interval=HOUR,
        num_seeds=10,
        min_seed_count=1,
        min_pair_support=1,
        min_history=2,
        predictor="moving_average",
        predictor_window=3,
    )
    defaults.update(overrides)
    return EnBlogueConfig(**defaults)


@pytest.fixture(scope="module")
def docs():
    corpus, _ = TweetStreamGenerator(hours=12, tweets_per_hour=40,
                                     seed=5).generate()
    return list(corpus)


def stage_samples(observability):
    """{(shard, stage): count} from the per-shard stage histogram."""
    family = observability.registry.get(
        "repro_sharding_shard_stage_seconds")
    out = {}
    for key, child in family.samples():
        labels = dict(key)
        _cumulative, _sum, count = child.merged()
        if count:
            out[(labels["shard"], labels["stage"])] = int(count)
    return out


class TestWorkerTelemetry:
    def test_drain_telemetry_empties_the_buffers(self):
        worker = ShardWorker(shard_id=0, config=config())
        assert worker.drain_telemetry() is None
        worker.log_event("custom", detail=1)
        first = worker.drain_telemetry()
        assert first["logs"][0]["event"] == "custom"
        assert first["logs"][0]["detail"] == 1
        assert worker.drain_telemetry() is None  # drained means drained

    def test_telemetry_buffers_are_bounded(self):
        worker = ShardWorker(shard_id=0, config=config())
        for i in range(TELEMETRY_CAPACITY + 50):
            worker.log_event("tick", i=i)
        telemetry = worker.drain_telemetry()
        assert len(telemetry["logs"]) == TELEMETRY_CAPACITY
        # Oldest dropped, newest kept.
        assert telemetry["logs"][-1]["i"] == TELEMETRY_CAPACITY + 49

    @pytest.mark.parametrize("backend", ["serial", "threads", "process"])
    def test_per_shard_stage_histogram_for_every_backend(
            self, docs, backend):
        observability = Observability()
        with ShardedEnBlogue(config(), num_shards=2, backend=backend,
                             observability=observability) as sharded:
            sharded.process_batch(docs[:200])
            sharded.evaluate_now()
        samples = stage_samples(observability)
        for shard in ("0", "1"):
            assert samples.get((shard, "ingest"), 0) > 0, (backend, shard)
            assert samples.get((shard, "evaluate"), 0) > 0, (backend, shard)

    def test_restore_ships_a_shard_restore_record(self, docs):
        observability = Observability()
        with ShardedEnBlogue(config(), num_shards=2,
                             backend="serial") as source:
            source.process_batch(docs[:100])
            states = source.backend.collect_states()
        with ShardedEnBlogue(config(), num_shards=2, backend="serial",
                             observability=observability) as rebuilt:
            rebuilt.backend.restore_states(states)
        records = observability.log.records()
        restores = [r for r in records if r["event"] == "shard_restore"]
        assert {r["shard"] for r in restores} == {0, 1}
        assert all(r["live_pairs"] >= 0 for r in restores)

    def test_disabled_bundle_records_no_stage_samples(self, docs):
        with ShardedEnBlogue(config(), num_shards=2,
                             backend="serial") as sharded:
            sharded.process_batch(docs[:100])
        # No enabled bundle bound: the engine must not have built the
        # per-shard children at all (the disabled path stays free).
        assert sharded.backend._metric_shard_stage is None
