"""The self-healing supervisor: exact recovery, retries, degradation.

The central pin is bit-identity: a supervised run that loses a worker
mid-stream must publish *exactly* the rankings of an undisturbed run —
recovery rebuilds worker state from base + operation-log replay, never
approximates it.  Every fault here is scripted through the counted
:class:`FaultPlan` hooks and every clock is injected, so the suite is
deterministic and sleeps for zero real seconds.
"""

import multiprocessing

import pytest

from repro.core.config import EnBlogueConfig
from repro.core.engine import EnBlogue
from repro.core.types import TagPair
from repro.datasets.documents import Document
from repro.datasets.twitter import TweetStreamGenerator
from repro.faults import FaultPlan, tear_journal_tail
from repro.observability import Observability
from repro.persistence.snapshot import SnapshotMismatchError
from repro.sharding import (
    RetryPolicy,
    ShardedEnBlogue,
    SupervisedBackend,
    make_backend,
)
from repro.sharding.backends import (
    ProcessBackend,
    ShardExecutionError,
    ThreadBackend,
)
from repro.sharding.worker import ShardWorker

HOUR = 3600.0


def config(**overrides):
    defaults = dict(
        window_horizon=6 * HOUR,
        evaluation_interval=HOUR,
        num_seeds=10,
        min_seed_count=1,
        min_pair_support=1,
        min_history=2,
        predictor="moving_average",
        predictor_window=3,
    )
    defaults.update(overrides)
    return EnBlogueConfig(**defaults)


def signature(engine):
    return [
        (ranking.timestamp, ranking.label, ranking.topics)
        for ranking in engine.ranking_history()
    ]


def doc(t, tags):
    return Document(timestamp=float(t), doc_id=f"doc-{t}",
                    tags=frozenset(tags))


class FakeClock:
    """Injected monotonic time: ``sleep`` advances, nothing waits."""

    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def __call__(self):
        return self.now

    def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.now += seconds


def instant_policy(clock=None, **overrides):
    clock = clock or FakeClock()
    defaults = dict(max_retries=3, backoff_base=0.05,
                    clock=clock, sleep=clock.sleep)
    defaults.update(overrides)
    return RetryPolicy(**defaults)


def make_inner(kind):
    if kind == "threads":
        return ThreadBackend()
    return ProcessBackend(start_method="fork")


@pytest.fixture(scope="module")
def tweet_docs():
    corpus, _ = TweetStreamGenerator(hours=24, tweets_per_hour=60,
                                     seed=7).generate()
    return list(corpus)


@pytest.fixture(scope="module")
def reference_signature(tweet_docs):
    engine = EnBlogue(config())
    engine.process_batch(tweet_docs)
    engine.evaluate_now()
    return signature(engine)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="backoff"):
            RetryPolicy(backoff_base=-0.1)
        with pytest.raises(ValueError, match="backoff_factor"):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError, match="deadline"):
            RetryPolicy(deadline=0.0)

    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0,
                             backoff_max=0.5)
        assert [policy.backoff(n) for n in (1, 2, 3, 4)] == \
            [0.1, 0.2, 0.4, 0.5]
        with pytest.raises(ValueError, match="1-based"):
            policy.backoff(0)

    def test_refuses_double_supervision(self):
        with pytest.raises(ValueError, match="supervise"):
            SupervisedBackend(SupervisedBackend("serial"))


class TestExactRecovery:
    @pytest.mark.parametrize("num_shards", [2, 4])
    @pytest.mark.parametrize("inner", ["threads", "process"])
    def test_worker_kill_mid_stream_stays_bit_identical(
            self, tweet_docs, reference_signature, num_shards, inner):
        clock = FakeClock()
        plan = FaultPlan(sleep=clock.sleep).kill_worker(
            num_shards - 1, after_batches=2)
        backend = SupervisedBackend(make_inner(inner),
                                    policy=instant_policy(clock))
        backend.bind_fault_plan(plan)
        with ShardedEnBlogue(config(), num_shards=num_shards,
                             backend=backend, chunk_size=128) as sharded:
            sharded.process_batch(tweet_docs)
            sharded.evaluate_now()
            assert signature(sharded) == reference_signature
            info = sharded.supervision_info()
        assert info["recoveries"] == 1
        assert info["permanent_failure"] is None
        assert info["last_recovery"]["source"] == "memory"
        assert plan.fired() == 1

    def test_dispatch_failure_is_retried_transparently(self, tweet_docs,
                                                       reference_signature):
        clock = FakeClock()
        plan = FaultPlan(sleep=clock.sleep).fail_dispatch(
            shard=0, exception=BrokenPipeError, after=2, times=1,
            operation="ingest")
        backend = SupervisedBackend(ThreadBackend(),
                                    policy=instant_policy(clock))
        backend.bind_fault_plan(plan)
        with ShardedEnBlogue(config(), num_shards=2, backend=backend,
                             chunk_size=128) as sharded:
            sharded.process_batch(tweet_docs)
            sharded.evaluate_now()
            assert signature(sharded) == reference_signature
            info = sharded.supervision_info()
        assert info["recoveries"] == 1
        assert clock.sleeps  # the backoff ran, on the fake clock

    def test_kill_between_delta_tick_and_next_batch_rebases_from_disk(
            self, tweet_docs, reference_signature, tmp_path):
        clock = FakeClock()
        backend = SupervisedBackend(ProcessBackend(start_method="fork"),
                                    policy=instant_policy(clock),
                                    checkpoint_dir=tmp_path)
        with ShardedEnBlogue(config(), num_shards=4, backend=backend,
                             chunk_size=128) as sharded:
            sharded.process_batch(tweet_docs[:600])
            sharded.save_checkpoint(tmp_path, track_deltas=True)
            sharded.process_batch(tweet_docs[600:900])
            sharded.save_delta_checkpoint(tmp_path)
            # The very next dispatch to shard 2 is fatal: the recovery
            # window sits exactly between a journal drain and new input.
            plan = FaultPlan(sleep=clock.sleep).kill_worker(
                2, after_batches=1)
            backend.bind_fault_plan(plan)
            sharded.process_batch(tweet_docs[900:])
            sharded.evaluate_now()
            assert signature(sharded) == reference_signature
            info = sharded.supervision_info()
        assert info["recoveries"] == 1
        assert info["last_recovery"]["source"] == "checkpoint"

    def test_torn_journal_tail_recovers_from_verified_prefix(
            self, tweet_docs, reference_signature, tmp_path):
        clock = FakeClock()
        backend = SupervisedBackend(ThreadBackend(),
                                    policy=instant_policy(clock),
                                    checkpoint_dir=tmp_path)
        with ShardedEnBlogue(config(), num_shards=2, backend=backend,
                             chunk_size=128) as sharded:
            sharded.process_batch(tweet_docs[:500])
            sharded.save_checkpoint(tmp_path, track_deltas=True)
            sharded.process_batch(tweet_docs[500:700])
            sharded.save_delta_checkpoint(tmp_path)
            sharded.process_batch(tweet_docs[700:900])
            sharded.save_delta_checkpoint(tmp_path)
            # Crash mid-append: the newest segment's CRC framing now
            # fails, so disk only proves the chain up to the previous
            # drain — the log suffix past that marker fills the gap.
            tear_journal_tail(tmp_path)
            plan = FaultPlan(sleep=clock.sleep).kill_worker(
                1, after_batches=1)
            backend.bind_fault_plan(plan)
            sharded.process_batch(tweet_docs[900:])
            sharded.evaluate_now()
            assert signature(sharded) == reference_signature
            info = sharded.supervision_info()
        assert info["recoveries"] == 1
        assert info["last_recovery"]["source"] == "checkpoint"

    def test_recovery_metrics_and_trace_are_recorded(self, tweet_docs):
        clock = FakeClock()
        observability = Observability()
        plan = FaultPlan(sleep=clock.sleep).kill_worker(0, after_batches=1)
        backend = SupervisedBackend(ThreadBackend(),
                                    policy=instant_policy(clock))
        backend.bind_fault_plan(plan)
        with ShardedEnBlogue(config(), num_shards=2, backend=backend,
                             chunk_size=128,
                             observability=observability) as sharded:
            sharded.process_batch(tweet_docs[:300])
            sharded.evaluate_now()
        from repro.observability import render_prometheus
        rendered = render_prometheus(observability.registry)
        assert "repro_sharding_recoveries_total 1" in rendered
        # The dead thread goes unnoticed by fire-and-forget ingest and
        # surfaces at the next gather, which is the evaluate boundary.
        assert 'repro_sharding_retry_attempts_total{operation="evaluate"} 1' \
            in rendered
        assert "repro_sharding_backoff_seconds_total" in rendered
        # The tracer span feeds the per-stage histogram under its name.
        assert 'repro_pipeline_stage_seconds_count{stage="recovery"} 1' \
            in rendered


class TestDeadlines:
    def test_gather_past_deadline_counts_as_failure(self, tweet_docs,
                                                    reference_signature):
        clock = FakeClock()
        policy = instant_policy(clock, deadline=1.0, backoff_base=0.0)
        # The delay advances the shared fake clock 5 virtual seconds —
        # far past the 1s deadline — without any real waiting.
        plan = FaultPlan(sleep=clock.sleep).delay_gather(
            shard=0, seconds=5.0)
        backend = SupervisedBackend(ThreadBackend(), policy=policy)
        backend.bind_fault_plan(plan)
        with ShardedEnBlogue(config(), num_shards=2, backend=backend,
                             chunk_size=128) as sharded:
            sharded.process_batch(tweet_docs)
            sharded.evaluate_now()
            assert signature(sharded) == reference_signature
            info = sharded.supervision_info()
        assert info["recoveries"] == 1
        assert clock.now >= 5.0


class TestPermanentFailure:
    def test_exhausted_budget_escalates_and_latches(self):
        clock = FakeClock()
        policy = instant_policy(clock, max_retries=2)
        plan = FaultPlan(sleep=clock.sleep).fail_dispatch(
            shard=0, exception=BrokenPipeError, times=99)
        backend = SupervisedBackend(ThreadBackend(), policy=policy)
        backend.bind_fault_plan(plan)
        backend.start([ShardWorker(0, config()), ShardWorker(1, config())])
        try:
            with pytest.raises(ShardExecutionError,
                               match="failed after 2 recovery attempt"):
                backend.ingest([[(10.0, (TagPair("a", "b"),))], []])
            # Backoff ran once per retry, on the injected sleep.
            assert clock.sleeps == [policy.backoff(1), policy.backoff(2)]
            info = backend.supervision_info()
            assert info["permanent_failure"] is not None
            # Latched: every subsequent call fails fast, no new retries.
            with pytest.raises(ShardExecutionError, match="permanently"):
                backend.stats()
            assert backend.supervision_info()["retries"] == info["retries"]
            assert all(not record["alive"] for record in backend.health())
        finally:
            backend.close()


class TestDegradedMode:
    def test_truncated_log_falls_back_to_n_minus_one(self, tweet_docs):
        clock = FakeClock()
        backend = SupervisedBackend(ThreadBackend(),
                                    policy=instant_policy(clock),
                                    max_log_ops=0)
        with ShardedEnBlogue(config(), num_shards=3, backend=backend,
                             chunk_size=128) as sharded:
            sharded.process_batch(tweet_docs[:300])
            # A snapshot captures per-shard base states — the only thing
            # a truncated log leaves to re-shard from.
            sharded.snapshot()
            plan = FaultPlan(sleep=clock.sleep).kill_worker(
                1, after_batches=1)
            backend.bind_fault_plan(plan)
            sharded.process_batch(tweet_docs[300:600])
            info = sharded.supervision_info()
            assert info["degraded"] is True
            assert info["live_shards"] == 2
            assert info["last_recovery"]["source"] == "degraded"
            # Availability over exactness: the contracted pool still
            # ingests and evaluates.
            sharded.evaluate_now()
            assert sharded.ranking_history()
            # The journal chain must not be extended by a lying width.
            with pytest.raises(SnapshotMismatchError):
                backend.collect_deltas(1)

    def test_full_restore_exits_degraded_mode(self, tweet_docs):
        clock = FakeClock()
        backend = SupervisedBackend(ThreadBackend(),
                                    policy=instant_policy(clock),
                                    max_log_ops=0)
        with ShardedEnBlogue(config(), num_shards=3, backend=backend,
                             chunk_size=128) as sharded:
            sharded.process_batch(tweet_docs[:300])
            state = sharded.snapshot()
            plan = FaultPlan(sleep=clock.sleep).kill_worker(
                0, after_batches=1)
            backend.bind_fault_plan(plan)
            sharded.process_batch(tweet_docs[300:500])
            assert sharded.supervision_info()["degraded"] is True
            sharded.restore(state)
            info = sharded.supervision_info()
            assert info["degraded"] is False
            assert info["live_shards"] == 3


class TestNoOrphanedProcesses:
    def test_gather_failure_reaps_every_worker_process(self):
        backend = ProcessBackend(start_method="fork")
        backend.bind_fault_plan(
            FaultPlan().fail_gather(shard=0, exception=EOFError))
        backend.start([ShardWorker(0, config()), ShardWorker(1, config())])
        processes = list(backend._processes)
        assert all(process.is_alive() for process in processes)
        backend.ingest([[(10.0, (TagPair("a", "b"),))], []])
        with pytest.raises(ShardExecutionError, match="shard 0"):
            backend.stats()
        for process in processes:
            process.join(timeout=10.0)
        assert all(not process.is_alive() for process in processes)
        assert backend._processes == []
        leftover = {
            child.pid for child in multiprocessing.active_children()
        }
        assert not leftover.intersection(
            {process.pid for process in processes})

    def test_dispatch_failure_reaps_every_worker_process(self):
        backend = ProcessBackend(start_method="fork")
        backend.bind_fault_plan(
            FaultPlan().fail_dispatch(shard=1, exception=BrokenPipeError))
        backend.start([ShardWorker(0, config()), ShardWorker(1, config())])
        processes = list(backend._processes)
        with pytest.raises(ShardExecutionError, match="shard 1"):
            backend.ingest([[(10.0, (TagPair("a", "b"),))],
                            [(10.0, (TagPair("a", "c"),))]])
        for process in processes:
            process.join(timeout=10.0)
        assert all(not process.is_alive() for process in processes)


class TestSupervisedWiring:
    def test_available_and_make_backend_know_supervised(self):
        from repro.sharding import available_backends
        assert "supervised" in available_backends()
        backend = make_backend("supervised")
        assert isinstance(backend, SupervisedBackend)
        assert backend.inner_name == "serial"

    def test_engine_reports_supervised_shape(self, tweet_docs):
        backend = SupervisedBackend(ThreadBackend())
        with ShardedEnBlogue(config(), num_shards=2,
                             backend=backend) as sharded:
            sharded.process_batch(tweet_docs[:200])
            info = sharded.runtime_info()
            assert info["backend"] == "supervised[threads]"
            # The striped-window fast path keys off the *inner* backend.
            stats = sharded.shard_stats()
            assert [entry["shard_id"] for entry in stats] == [0, 1]

    def test_health_marks_recovering_shards(self, tweet_docs):
        clock = FakeClock()
        backend = SupervisedBackend(ThreadBackend(),
                                    policy=instant_policy(clock))
        with ShardedEnBlogue(config(), num_shards=2,
                             backend=backend) as sharded:
            sharded.process_batch(tweet_docs[:200])
            records = backend.health()
            assert all(record["alive"] for record in records)
            assert all(record["recovering"] is False for record in records)


class TestFaultLogTrail:
    def test_injection_and_recovery_leave_trace_correlated_records(
            self, tweet_docs):
        clock = FakeClock()
        observability = Observability()
        plan = FaultPlan(sleep=clock.sleep).kill_worker(0, after_batches=1)
        backend = SupervisedBackend(ThreadBackend(),
                                    policy=instant_policy(clock))
        backend.bind_fault_plan(plan)
        with ShardedEnBlogue(config(), num_shards=2, backend=backend,
                             chunk_size=128,
                             observability=observability) as sharded:
            sharded.process_batch(tweet_docs[:300])
            sharded.evaluate_now()
        records = observability.log.records()
        events = {record["event"] for record in records}
        # The drill documents itself...
        fault = next(r for r in records if r["event"] == "fault_injected")
        assert fault["level"] == "warning"
        assert fault["site"] == "dispatch" and fault["action"] == "kill"
        assert fault["shard"] == 0
        # ...the retry and the recovery follow...
        assert "shard_retry" in events
        recovery = next(r for r in records if r["event"] == "recovery")
        assert recovery["shard"] == 0
        # ...and the recovery record shares the trace id of the trace
        # holding the supervisor's `recovery` span, so /logs lines join
        # /trace span trees.  (A failure surfacing mid-batch recovers
        # inside that batch's trace; one surfacing outside any batch
        # gets its own aux-recovery trace.)
        def span_names(spans):
            for span in spans:
                yield span["name"]
                yield from span_names(span.get("children", ()))

        recovery_traces = {
            trace["trace_id"]
            for trace in observability.tracer.traces()
            if "recovery" in set(span_names(trace["spans"]))
        }
        assert recovery["trace_id"] in recovery_traces

    def test_permanent_failure_is_logged_as_an_error(self):
        clock = FakeClock()
        observability = Observability()
        policy = instant_policy(clock, max_retries=1)
        plan = FaultPlan(sleep=clock.sleep).fail_dispatch(
            shard=0, exception=BrokenPipeError, times=99)
        backend = SupervisedBackend(ThreadBackend(), policy=policy)
        backend.bind_fault_plan(plan)
        backend.bind_observability(observability)
        backend.start([ShardWorker(0, config()), ShardWorker(1, config())])
        try:
            with pytest.raises(ShardExecutionError):
                backend.ingest([[(10.0, (TagPair("a", "b"),))], []])
        finally:
            backend.close()
        records = observability.log.records()
        assert any(r["event"] == "fault_injected" for r in records)
        failure = next(
            r for r in records if r["event"] == "permanent_failure")
        assert failure["level"] == "error"
        assert failure["shard"] == 0
