"""Sharded scatter-gather engine: bit-identical to the single engine.

The acceptance bar of the sharding subsystem: for shard counts 1, 2 and 4,
``ShardedEnBlogue`` with the serial backend produces rankings *bit-identical*
to ``EnBlogue`` on the synthetic and twitter generators, and the process
backend matches too.  "Bit-identical" is checked through full
``EmergentTopic`` equality — every float (score, correlation, prediction,
error) must agree exactly, not approximately.
"""

import pytest

from repro.core.config import EnBlogueConfig
from repro.core.engine import EnBlogue
from repro.datasets.documents import Document
from repro.datasets.synthetic import correlation_shift_stream
from repro.datasets.twitter import TweetStreamGenerator
from repro.sharding import (
    ProcessBackend,
    SerialBackend,
    ShardedEnBlogue,
    make_backend,
)

HOUR = 3600.0


def config(**overrides):
    defaults = dict(
        window_horizon=6 * HOUR,
        evaluation_interval=HOUR,
        num_seeds=10,
        min_seed_count=1,
        min_pair_support=1,
        min_history=2,
        predictor="moving_average",
        predictor_window=3,
    )
    defaults.update(overrides)
    return EnBlogueConfig(**defaults)


def signature(engine):
    """Full-fidelity ranking history: timestamps, topics, every float."""
    return [
        (ranking.timestamp, ranking.label, ranking.topics)
        for ranking in engine.ranking_history()
    ]


def doc(t, tags):
    return Document(timestamp=float(t), doc_id=f"doc-{t}", tags=frozenset(tags))


@pytest.fixture(scope="module")
def tweet_docs():
    corpus, _ = TweetStreamGenerator(hours=24, tweets_per_hour=60,
                                     seed=7).generate()
    return list(corpus)


@pytest.fixture(scope="module")
def shift_docs():
    corpus, _ = correlation_shift_stream(num_events=3, num_steps=48,
                                         shift_start=24, seed=11)
    return list(corpus)


def single_reference(docs, cfg):
    engine = EnBlogue(cfg)
    engine.process_many(docs)
    engine.evaluate_now()
    return engine


class TestSerialEquivalence:
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_twitter_stream_rankings_bit_identical(self, tweet_docs, num_shards):
        cfg = config()
        reference = single_reference(tweet_docs, cfg)
        with ShardedEnBlogue(cfg, num_shards=num_shards,
                             backend="serial", chunk_size=64) as sharded:
            sharded.process_many(tweet_docs)
            sharded.evaluate_now()
            assert signature(sharded) == signature(reference)
            assert sharded.documents_processed == reference.documents_processed
            assert sharded.current_seeds == reference.current_seeds

    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_synthetic_shift_stream_rankings_bit_identical(self, shift_docs,
                                                           num_shards):
        cfg = config(min_pair_support=2, predictor="ewma")
        reference = single_reference(shift_docs, cfg)
        with ShardedEnBlogue(cfg, num_shards=num_shards,
                             backend="serial", chunk_size=32) as sharded:
            sharded.process_many(shift_docs)
            sharded.evaluate_now()
            assert signature(sharded) == signature(reference)

    def test_batch_path_matches_per_document_path(self, tweet_docs):
        cfg = config()
        with ShardedEnBlogue(cfg, num_shards=4, backend="serial") as per_doc, \
                ShardedEnBlogue(cfg, num_shards=4, backend="serial") as batched:
            per_doc.process_many(tweet_docs)
            for start in range(0, len(tweet_docs), 97):
                batched.process_batch(tweet_docs[start:start + 97])
            assert signature(per_doc) == signature(batched)
            assert per_doc.documents_processed == batched.documents_processed

    def test_chunk_size_does_not_affect_rankings(self, tweet_docs):
        cfg = config()
        signatures = []
        for chunk_size in (1, 17, 4096):
            with ShardedEnBlogue(cfg, num_shards=3, backend="serial",
                                 chunk_size=chunk_size) as sharded:
                sharded.process_many(tweet_docs)
                sharded.evaluate_now()
                signatures.append(signature(sharded))
        assert signatures[0] == signatures[1] == signatures[2]

    def test_catch_up_over_quiet_stretch(self):
        # A jump across several evaluation boundaries must publish one
        # ranking per boundary, exactly like the single engine.
        cfg = config()
        docs = [doc(0, ["a", "b"]), doc(600, ["a", "b"]),
                doc(5 * HOUR, ["a", "c"])]
        reference = EnBlogue(cfg)
        reference.process_many(docs)
        with ShardedEnBlogue(cfg, num_shards=2, backend="serial") as sharded:
            sharded.process_many(docs)
            assert signature(sharded) == signature(reference)
            assert len(sharded.ranking_history()) == 5

    def test_listeners_fire_per_boundary_with_matching_counts(self, tweet_docs):
        cfg = config()
        seen = []
        with ShardedEnBlogue(cfg, num_shards=2, backend="serial") as sharded:
            sharded.add_ranking_listener(
                lambda ranking: seen.append(
                    (ranking.timestamp, sharded.documents_processed)
                )
            )
            sharded.process_batch(tweet_docs)
        reference = EnBlogue(cfg)
        expected = []
        reference.add_ranking_listener(
            lambda ranking: expected.append(
                (ranking.timestamp, reference.documents_processed)
            )
        )
        reference.process_batch(tweet_docs)
        assert seen == expected


class TestProcessBackendEquivalence:
    @pytest.mark.parametrize("num_shards", [2, 4])
    def test_twitter_stream_rankings_bit_identical(self, tweet_docs, num_shards):
        cfg = config()
        reference = single_reference(tweet_docs, cfg)
        with ShardedEnBlogue(cfg, num_shards=num_shards,
                             backend="process", chunk_size=128) as sharded:
            sharded.process_batch(tweet_docs)
            sharded.evaluate_now()
            assert signature(sharded) == signature(reference)

    def test_synthetic_shift_stream_rankings_bit_identical(self, shift_docs):
        cfg = config(min_pair_support=2)
        reference = single_reference(shift_docs, cfg)
        with ShardedEnBlogue(cfg, num_shards=4, backend="process") as sharded:
            sharded.process_many(shift_docs)
            sharded.evaluate_now()
            assert signature(sharded) == signature(reference)

    def test_worker_failure_surfaces_at_evaluation(self):
        # An out-of-order chunk poisons the worker; the fire-and-forget
        # ingest defers the error to the next synchronisation point.
        from repro.sharding.backends import ShardExecutionError
        from repro.sharding.worker import ShardWorker
        from repro.core.types import TagPair

        backend = ProcessBackend()
        backend.start([ShardWorker(0, config())])
        try:
            backend.ingest([[(10.0, (TagPair("a", "b"),))]])
            backend.ingest([[(5.0, (TagPair("a", "c"),))]])
            with pytest.raises(ShardExecutionError):
                backend.evaluate(11.0, ["a"], {"a": 2, "b": 1, "c": 1}, 2)
        finally:
            backend.close()

    def test_dead_worker_process_raises_shard_error_and_reaps_pool(self):
        from repro.sharding.backends import ShardExecutionError
        from repro.sharding.worker import ShardWorker

        backend = ProcessBackend()
        backend.start([ShardWorker(0, config()), ShardWorker(1, config())])
        try:
            backend._processes[0].terminate()
            backend._processes[0].join(timeout=5.0)
            with pytest.raises(ShardExecutionError, match="shard 0"):
                backend.evaluate(1.0, ["a"], {"a": 1}, 1)
            # The surviving worker was reaped, not leaked.
            assert backend._processes == []
            assert backend._pipes == []
        finally:
            backend.close()

    def test_close_is_idempotent(self):
        with ShardedEnBlogue(config(), num_shards=2,
                             backend="process") as sharded:
            sharded.process(doc(0, ["a", "b"]))
            sharded.close()
        sharded.close()

    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_use_after_close_raises_instead_of_publishing_empty(self, backend):
        # A closed engine must fail loudly: silently dropping chunks would
        # publish bogus empty rankings to listeners.
        sharded = ShardedEnBlogue(config(), num_shards=2, backend=backend)
        sharded.process(doc(0, ["a", "b"]))
        sharded.close()
        with pytest.raises(RuntimeError, match="closed"):
            sharded.process(doc(10, ["a", "c"]))
        with pytest.raises(RuntimeError, match="closed"):
            sharded.process_batch([doc(10, ["a", "c"])])
        with pytest.raises(RuntimeError, match="closed"):
            sharded.evaluate_now(10.0)
        assert sharded.ranking_history() == []

    def test_shard_stats_report_partitioned_state(self, tweet_docs):
        with ShardedEnBlogue(config(), num_shards=4,
                             backend="process") as sharded:
            sharded.process_batch(tweet_docs[:500])
            stats = sharded.shard_stats()
            assert [entry["shard_id"] for entry in stats] == [0, 1, 2, 3]
            assert sum(entry["live_pairs"] for entry in stats) > 0


class TestEngineSurface:
    def test_kl_measure_rejected_at_construction_with_actionable_message(self):
        # The error must name the config key and list the measures that DO
        # work sharded, so the fix is evident without reading the source.
        with pytest.raises(ValueError) as excinfo:
            ShardedEnBlogue(config(correlation_measure="kl"), num_shards=2)
        message = str(excinfo.value)
        assert "correlation_measure" in message
        for supported in ("jaccard", "overlap", "cosine", "pmi"):
            assert supported in message
        assert "EnBlogue" in message

    def test_kl_rejection_leaks_no_backend(self):
        # Construction fails before the backend starts: no worker processes
        # are left behind by the raise.
        backend = SerialBackend()
        with pytest.raises(ValueError):
            ShardedEnBlogue(config(correlation_measure="kl"), num_shards=2,
                            backend=backend)
        assert backend.workers == []

    def test_process_backend_start_method_pinned_to_spawn(self):
        # The platform default ("fork" on Linux, "spawn" on macOS) must not
        # leak into worker behavior; the pinned default is overridable.
        assert ProcessBackend().start_method == "spawn"
        assert make_backend("process").start_method == "spawn"
        assert ProcessBackend(start_method="fork").start_method == "fork"

    @pytest.mark.parametrize("start_method", ["spawn", "fork"])
    def test_rankings_identical_across_start_methods(self, tweet_docs,
                                                     start_method):
        cfg = config()
        reference = single_reference(tweet_docs[:300], cfg)
        backend = ProcessBackend(start_method=start_method)
        with ShardedEnBlogue(cfg, num_shards=2, backend=backend) as sharded:
            sharded.process_batch(tweet_docs[:300])
            sharded.evaluate_now()
            assert signature(sharded) == signature(reference)

    def test_chunk_size_validated(self):
        with pytest.raises(ValueError):
            ShardedEnBlogue(config(), num_shards=2, chunk_size=0)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown shard backend"):
            make_backend("fibers")

    def test_evaluate_now_requires_documents(self):
        with ShardedEnBlogue(config(), num_shards=2) as sharded:
            with pytest.raises(ValueError):
                sharded.evaluate_now()

    def test_out_of_order_document_rejected(self):
        with ShardedEnBlogue(config(), num_shards=2) as sharded:
            sharded.process(doc(100, ["a", "b"]))
            with pytest.raises(ValueError, match="out-of-order"):
                sharded.process(doc(50, ["a", "c"]))

    def test_rejected_batch_leaves_engine_unchanged(self, tweet_docs):
        # The whole chunk is validated before any state is touched: after a
        # rejected batch the engine continues exactly as if the batch had
        # never been offered.
        cfg = config()
        reference = EnBlogue(cfg)
        reference.process_many(tweet_docs)
        reference.evaluate_now()
        with ShardedEnBlogue(cfg, num_shards=2, backend="serial") as sharded:
            half = len(tweet_docs) // 2
            sharded.process_batch(tweet_docs[:half])
            with pytest.raises(ValueError, match="out-of-order"):
                sharded.process_batch([doc(1e12, ["x", "y"]),
                                       doc(0, ["a", "b"])])
            assert sharded.documents_processed == half
            sharded.process_batch(tweet_docs[half:])
            sharded.evaluate_now()
            assert signature(sharded) == signature(reference)

    def test_backend_instance_accepted(self):
        backend = SerialBackend()
        with ShardedEnBlogue(config(), num_shards=2, backend=backend) as sharded:
            sharded.process(doc(0, ["a", "b"]))
            assert sharded.backend is backend
            assert len(backend.workers) == 2

    def test_as_sink_feeds_engine(self, tweet_docs):
        cfg = config()
        reference = EnBlogue(cfg)
        reference.process_many(tweet_docs[:200])
        with ShardedEnBlogue(cfg, num_shards=2) as sharded:
            sink = sharded.as_sink()
            for document in tweet_docs[:200]:
                sink.consume(document)
            assert signature(sharded) == signature(reference)
