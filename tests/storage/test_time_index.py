"""Tests for the time-partitioned index."""

import pytest

from repro.storage.time_index import TimePartitionedIndex
from repro.streams.item import StreamItem


def item(doc_id, t, tags):
    return StreamItem(timestamp=float(t), doc_id=doc_id, tags=frozenset(tags))


class TestTimePartitionedIndex:
    def test_partition_of(self):
        index = TimePartitionedIndex(partition_length=10.0)
        assert index.partition_of(0.0) == 0
        assert index.partition_of(9.9) == 0
        assert index.partition_of(10.0) == 1

    def test_negative_timestamp_rejected(self):
        with pytest.raises(ValueError):
            TimePartitionedIndex(10.0).partition_of(-1.0)

    def test_document_and_tag_counts_over_range(self):
        index = TimePartitionedIndex(partition_length=10.0)
        index.index(item("d1", 1.0, {"a", "b"}))
        index.index(item("d2", 11.0, {"a"}))
        index.index(item("d3", 25.0, {"b"}))
        assert index.document_count(0.0, 30.0) == 3
        assert index.tag_count("a", 0.0, 15.0) == 2
        assert index.tag_count("a", 20.0, 30.0) == 0

    def test_pair_counts_are_order_independent(self):
        index = TimePartitionedIndex(partition_length=10.0)
        index.index(item("d1", 1.0, {"a", "b", "c"}))
        index.index(item("d2", 2.0, {"a", "b"}))
        assert index.pair_count("a", "b", 0.0, 10.0) == 2
        assert index.pair_count("b", "a", 0.0, 10.0) == 2
        assert index.pair_count("a", "c", 0.0, 10.0) == 1

    def test_top_tags_and_pairs(self):
        index = TimePartitionedIndex(partition_length=10.0)
        index.index(item("d1", 1.0, {"a", "b"}))
        index.index(item("d2", 2.0, {"a"}))
        assert index.top_tags(0.0, 10.0, 1) == [("a", 2)]
        assert index.top_pairs(0.0, 10.0, 1) == [(("a", "b"), 1)]
        assert index.top_tags(0.0, 10.0, 0) == []

    def test_range_queries_reject_reversed_bounds(self):
        index = TimePartitionedIndex(partition_length=10.0)
        with pytest.raises(ValueError):
            index.document_count(10.0, 0.0)

    def test_prune_before_drops_old_partitions(self):
        index = TimePartitionedIndex(partition_length=10.0)
        index.index(item("d1", 1.0, {"a"}))
        index.index(item("d2", 50.0, {"a"}))
        dropped = index.prune_before(40.0)
        assert dropped == 1
        assert index.document_count(0.0, 100.0) == 1

    def test_entities_counted_when_enabled(self):
        index = TimePartitionedIndex(partition_length=10.0, use_entities=True)
        index.index(StreamItem(timestamp=1.0, doc_id="d1", tags=frozenset({"a"}),
                               entities=frozenset({"Athens"})))
        assert index.tag_count("Athens", 0.0, 10.0) == 1

    def test_partitions_listing(self):
        index = TimePartitionedIndex(partition_length=10.0)
        index.index(item("d1", 5.0, {"a"}))
        index.index(item("d2", 25.0, {"a"}))
        assert index.partitions() == [0, 2]

    def test_rejects_non_positive_partition_length(self):
        with pytest.raises(ValueError):
            TimePartitionedIndex(0.0)
