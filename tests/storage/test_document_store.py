"""Tests for the bounded document store."""

import pytest

from repro.storage.document_store import DocumentStore
from repro.streams.item import StreamItem


def item(i, tags=("a",)):
    return StreamItem(timestamp=float(i), doc_id=f"d{i}", tags=frozenset(tags))


class TestDocumentStore:
    def test_put_and_get(self):
        store = DocumentStore()
        store.put(item(1))
        assert store.get("d1").timestamp == 1.0
        assert "d1" in store
        assert store.get("missing") is None

    def test_capacity_evicts_oldest(self):
        store = DocumentStore(capacity=3)
        for i in range(5):
            store.put(item(i))
        assert len(store) == 3
        assert store.evicted == 2
        assert "d0" not in store
        assert "d4" in store

    def test_reinsert_refreshes_position(self):
        store = DocumentStore(capacity=2)
        store.put(item(1))
        store.put(item(2))
        store.put(StreamItem(timestamp=9.0, doc_id="d1", tags=frozenset({"x"})))
        store.put(item(3))
        # d2 was the oldest untouched entry, so it is the one evicted.
        assert "d1" in store
        assert "d2" not in store
        assert store.get("d1").tags == frozenset({"x"})

    def test_recent_returns_newest_first(self):
        store = DocumentStore()
        for i in range(4):
            store.put(item(i))
        assert [d.doc_id for d in store.recent(2)] == ["d3", "d2"]
        assert store.recent(0) == []

    def test_iteration_and_clear(self):
        store = DocumentStore()
        store.put(item(1))
        store.put(item(2))
        assert len(list(store)) == 2
        store.clear()
        assert len(store) == 0

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            DocumentStore(capacity=0)
