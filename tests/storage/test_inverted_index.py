"""Tests for the inverted tag index."""

import pytest

from repro.storage.inverted_index import InvertedTagIndex
from repro.streams.item import StreamItem


def item(doc_id, tags, entities=(), t=1.0):
    return StreamItem(timestamp=t, doc_id=doc_id, tags=frozenset(tags),
                      entities=frozenset(entities))


class TestInvertedTagIndex:
    def test_index_and_postings(self):
        index = InvertedTagIndex()
        index.index(item("d1", {"a", "b"}))
        index.index(item("d2", {"a"}))
        assert index.postings("a") == {"d1", "d2"}
        assert index.postings("b") == {"d1"}
        assert index.postings("zzz") == set()
        assert index.document_frequency("a") == 2

    def test_entities_indexed_when_enabled(self):
        index = InvertedTagIndex(use_entities=True)
        index.index(item("d1", {"news"}, entities={"Athens"}))
        assert index.postings("Athens") == {"d1"}

    def test_entities_ignored_when_disabled(self):
        index = InvertedTagIndex(use_entities=False)
        index.index(item("d1", {"news"}, entities={"Athens"}))
        assert index.postings("Athens") == set()

    def test_conjunctive_query(self):
        index = InvertedTagIndex()
        index.index(item("d1", {"a", "b"}, t=1.0))
        index.index(item("d2", {"a"}, t=2.0))
        index.index(item("d3", {"a", "b"}, t=3.0))
        results = index.query(["a", "b"])
        assert [d.doc_id for d in results] == ["d3", "d1"]

    def test_query_with_missing_tag_is_empty(self):
        index = InvertedTagIndex()
        index.index(item("d1", {"a"}))
        assert index.query(["a", "zzz"]) == []

    def test_query_with_no_tags_is_empty(self):
        assert InvertedTagIndex().query([]) == []

    def test_reindexing_replaces_old_postings(self):
        index = InvertedTagIndex()
        index.index(item("d1", {"a"}))
        index.index(item("d1", {"b"}))
        assert index.postings("a") == set()
        assert index.postings("b") == {"d1"}
        assert len(index) == 1

    def test_remove(self):
        index = InvertedTagIndex()
        index.index(item("d1", {"a"}))
        index.remove("d1")
        assert index.postings("a") == set()
        assert len(index) == 0
        index.remove("d1")  # no-op

    def test_cooccurrence_count(self):
        index = InvertedTagIndex()
        index.index(item("d1", {"a", "b"}))
        index.index(item("d2", {"a", "b"}))
        index.index(item("d3", {"a"}))
        assert index.cooccurrence_count("a", "b") == 2
        assert index.cooccurrence_count("b", "a") == 2
        assert index.cooccurrence_count("a", "zzz") == 0

    def test_tags_listing(self):
        index = InvertedTagIndex()
        index.index(item("d1", {"b", "a"}))
        assert index.tags() == ["a", "b"]
