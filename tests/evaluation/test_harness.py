"""Tests for the experiment runner."""

import pytest

from repro.core.config import EnBlogueConfig
from repro.core.engine import EnBlogue
from repro.datasets.events import EmergentEvent, EventSchedule
from repro.datasets.synthetic import SyntheticStreamGenerator, figure1_stream
from repro.evaluation.harness import run_detector, run_experiment, score_run

HOUR = 3600.0


def small_engine():
    return EnBlogue(EnBlogueConfig(
        window_horizon=6 * HOUR, evaluation_interval=HOUR,
        num_seeds=10, min_seed_count=1, min_pair_support=1, min_history=2,
        predictor_window=3,
    ))


class TestRunDetector:
    def test_collects_rankings_and_counts(self):
        corpus, _ = figure1_stream(num_steps=20, shift_start=10)
        run = run_detector(small_engine(), corpus, name="enblogue")
        assert run.name == "enblogue"
        assert run.documents == len(corpus)
        assert len(run.rankings) >= 19
        assert run.wall_seconds > 0
        assert run.throughput > 0
        assert run.final_ranking() is not None

    def test_finalize_adds_a_last_evaluation(self):
        corpus, _ = figure1_stream(num_steps=10, shift_start=5)
        with_finalize = run_detector(small_engine(), corpus, finalize=True)
        without_finalize = run_detector(small_engine(), corpus, finalize=False)
        assert len(with_finalize.rankings) == len(without_finalize.rankings) + 1

    def test_default_name_is_detector_class(self):
        corpus, _ = figure1_stream(num_steps=5, shift_start=2)
        run = run_detector(small_engine(), corpus)
        assert run.name == "EnBlogue"

    def test_empty_corpus(self):
        run = run_detector(small_engine(), [])
        assert run.documents == 0
        assert run.rankings == []
        assert run.throughput >= 0.0


class TestScoring:
    def test_score_run_and_run_experiment_agree(self):
        corpus, schedule = figure1_stream(num_steps=45, shift_start=25)
        run = run_detector(small_engine(), corpus)
        scored = score_run(run, schedule, k=10)
        experiment = run_experiment(small_engine(), corpus, schedule, k=10)
        assert scored.recall == experiment.recall
        assert 0.0 <= scored.recall <= 1.0
        assert 0.0 <= scored.precision <= 1.0

    def test_figure1_event_is_detected(self):
        corpus, schedule = figure1_stream(num_steps=45, shift_start=25)
        result = run_experiment(small_engine(), corpus, schedule, k=10)
        assert result.recall == 1.0
        assert result.mean_latency is not None

    def test_summary_is_flat_and_json_friendly(self):
        corpus, schedule = figure1_stream(num_steps=20, shift_start=10)
        result = run_experiment(small_engine(), corpus, schedule,
                                extras={"config": "default"})
        summary = result.summary()
        assert summary["detector"] == "EnBlogue"
        assert summary["config"] == "default"
        assert isinstance(summary["recall"], float)
        assert isinstance(summary["documents"], int)

    def test_undetectable_schedule_scores_zero_recall(self):
        generator = SyntheticStreamGenerator(docs_per_step=5, seed=3)
        corpus = generator.generate(10)
        # Events whose tags never even appear in the stream.
        schedule = EventSchedule([
            EmergentEvent(name="ghost", tags=("nonexistent", "phantom"),
                          start=0.0, duration=10 * HOUR),
        ])
        result = run_experiment(small_engine(), corpus, schedule)
        assert result.recall == 0.0
        assert result.mean_latency is None
