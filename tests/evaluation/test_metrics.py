"""Tests for the evaluation metrics."""

import pytest

from repro.core.types import EmergentTopic, Ranking, TagPair
from repro.evaluation.metrics import (
    RankingComparison,
    detection_latency,
    kendall_tau,
    precision_at_k,
    recall_at_k,
    reciprocal_rank,
)


def ranking_from(pairs_scores, timestamp=0.0):
    topics = [
        EmergentTopic(pair=TagPair(*pair), score=score, timestamp=timestamp)
        for pair, score in pairs_scores
    ]
    return Ranking(timestamp=timestamp, topics=topics)


RANKING = ranking_from([
    (("a", "b"), 0.9),
    (("c", "d"), 0.7),
    (("e", "f"), 0.5),
    (("g", "h"), 0.3),
])


class TestPrecisionRecall:
    def test_precision_at_k(self):
        relevant = [("a", "b"), ("e", "f")]
        assert precision_at_k(RANKING, relevant, 2) == pytest.approx(0.5)
        assert precision_at_k(RANKING, relevant, 4) == pytest.approx(0.5)
        assert precision_at_k(RANKING, relevant, 0) == 0.0

    def test_precision_accepts_tagpair_objects(self):
        assert precision_at_k(RANKING, [TagPair("a", "b")], 1) == 1.0

    def test_recall_at_k(self):
        relevant = [("a", "b"), ("x", "y")]
        assert recall_at_k(RANKING, relevant, 4) == pytest.approx(0.5)
        assert recall_at_k(RANKING, [], 4) == 1.0
        assert recall_at_k(RANKING, relevant, 0) == 0.0

    def test_empty_ranking(self):
        empty = Ranking(timestamp=0.0)
        assert precision_at_k(empty, [("a", "b")], 3) == 0.0
        assert recall_at_k(empty, [("a", "b")], 3) == 0.0

    def test_reciprocal_rank(self):
        assert reciprocal_rank(RANKING, [("c", "d")]) == pytest.approx(0.5)
        assert reciprocal_rank(RANKING, [("a", "b")]) == 1.0
        assert reciprocal_rank(RANKING, [("x", "y")]) == 0.0


class TestKendallTau:
    def test_identical_orderings(self):
        items = [TagPair("a", "b"), TagPair("c", "d"), TagPair("e", "f")]
        assert kendall_tau(items, list(items)) == 1.0

    def test_reversed_orderings(self):
        items = [TagPair("a", "b"), TagPair("c", "d"), TagPair("e", "f")]
        assert kendall_tau(items, list(reversed(items))) == -1.0

    def test_partial_disagreement(self):
        first = ["x", "y", "z"]
        second = ["x", "z", "y"]
        assert 0.0 < kendall_tau(first, second) < 1.0

    def test_disjoint_rankings_are_trivially_consistent(self):
        assert kendall_tau(["a"], ["b"]) == 1.0

    def test_only_common_items_compared(self):
        first = ["a", "b", "c", "zzz"]
        second = ["c", "b", "a"]
        assert kendall_tau(first, second) == -1.0


class TestDetectionLatency:
    def make_history(self):
        return [
            ranking_from([(("x", "y"), 0.5)], timestamp=10.0),
            ranking_from([(("a", "b"), 0.9), (("x", "y"), 0.5)], timestamp=20.0),
            ranking_from([(("a", "b"), 0.9)], timestamp=30.0),
        ]

    def test_latency_to_first_appearance_after_onset(self):
        latency = detection_latency(self.make_history(), ("a", "b"), onset=15.0)
        assert latency == pytest.approx(5.0)

    def test_appearances_before_onset_are_ignored(self):
        latency = detection_latency(self.make_history(), ("x", "y"), onset=15.0)
        assert latency == pytest.approx(5.0)

    def test_never_detected_returns_none(self):
        assert detection_latency(self.make_history(), ("nope", "never"), onset=0.0) is None

    def test_top_k_restriction(self):
        history = [ranking_from([(("a", "b"), 0.9), (("c", "d"), 0.1)], timestamp=10.0)]
        assert detection_latency(history, ("c", "d"), onset=0.0, k=1) is None
        assert detection_latency(history, ("c", "d"), onset=0.0, k=2) == pytest.approx(10.0)

    def test_detection_at_onset_is_zero_latency(self):
        history = [ranking_from([(("a", "b"), 0.9)], timestamp=10.0)]
        assert detection_latency(history, ("a", "b"), onset=10.0) == 0.0


class TestRankingComparison:
    def test_identical_rankings(self):
        comparison = RankingComparison.compare(RANKING, RANKING, k=4)
        assert comparison.overlap == 1.0
        assert comparison.tau == 1.0
        assert comparison.only_in_first == ()
        assert comparison.only_in_second == ()

    def test_different_rankings(self):
        other = ranking_from([(("a", "b"), 0.9), (("p", "q"), 0.7)])
        comparison = RankingComparison.compare(RANKING, other, k=2)
        assert 0.0 < comparison.overlap < 1.0
        assert TagPair("c", "d") in comparison.only_in_first
        assert TagPair("p", "q") in comparison.only_in_second

    def test_empty_rankings_overlap_fully(self):
        empty = Ranking(timestamp=0.0)
        comparison = RankingComparison.compare(empty, empty)
        assert comparison.overlap == 1.0


class TestAveragePrecision:
    def test_perfect_ranking(self):
        from repro.evaluation.metrics import average_precision
        relevant = [("a", "b"), ("c", "d")]
        assert average_precision(RANKING, relevant) == pytest.approx(1.0)

    def test_partial_ranking(self):
        from repro.evaluation.metrics import average_precision
        # relevant pairs sit at ranks 1 and 3 -> AP = (1/1 + 2/3) / 2
        relevant = [("a", "b"), ("e", "f")]
        assert average_precision(RANKING, relevant) == pytest.approx((1.0 + 2 / 3) / 2)

    def test_missing_relevant_pairs_lower_the_score(self):
        from repro.evaluation.metrics import average_precision
        relevant = [("a", "b"), ("zz", "yy")]
        assert average_precision(RANKING, relevant) == pytest.approx(0.5)

    def test_empty_relevant_set_is_perfect(self):
        from repro.evaluation.metrics import average_precision
        assert average_precision(RANKING, []) == 1.0

    def test_cutoff_k(self):
        from repro.evaluation.metrics import average_precision
        relevant = [("g", "h")]
        assert average_precision(RANKING, relevant, k=2) == 0.0
        assert average_precision(RANKING, relevant, k=4) > 0.0


class TestNdcg:
    def test_ideal_ordering_scores_one(self):
        from repro.evaluation.metrics import ndcg_at_k
        relevance = {("a", "b"): 3, ("c", "d"): 2, ("e", "f"): 1}
        assert ndcg_at_k(RANKING, relevance, k=3) == pytest.approx(1.0)

    def test_suboptimal_ordering_scores_below_one(self):
        from repro.evaluation.metrics import ndcg_at_k
        relevance = {("g", "h"): 3, ("a", "b"): 1}
        value = ndcg_at_k(RANKING, relevance, k=4)
        assert 0.0 < value < 1.0

    def test_no_relevant_pairs_in_ranking(self):
        from repro.evaluation.metrics import ndcg_at_k
        assert ndcg_at_k(RANKING, {("x", "y"): 2}, k=3) == 0.0

    def test_empty_relevance_is_trivially_perfect(self):
        from repro.evaluation.metrics import ndcg_at_k
        assert ndcg_at_k(RANKING, {}, k=3) == 1.0

    def test_negative_relevance_rejected(self):
        from repro.evaluation.metrics import ndcg_at_k
        with pytest.raises(ValueError):
            ndcg_at_k(RANKING, {("a", "b"): -1}, k=3)

    def test_zero_k(self):
        from repro.evaluation.metrics import ndcg_at_k
        assert ndcg_at_k(RANKING, {("a", "b"): 1}, k=0) == 0.0
