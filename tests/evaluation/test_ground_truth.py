"""Tests for ground-truth matching."""

import pytest

from repro.core.types import EmergentTopic, Ranking, TagPair
from repro.datasets.events import EmergentEvent, EventSchedule
from repro.evaluation.ground_truth import GroundTruthMatcher


def ranking_with(pairs, timestamp):
    topics = [
        EmergentTopic(pair=TagPair(*pair), score=1.0 - 0.1 * i, timestamp=timestamp)
        for i, pair in enumerate(pairs)
    ]
    return Ranking(timestamp=timestamp, topics=topics)


SCHEDULE = EventSchedule([
    EmergentEvent(name="detected", tags=("a", "b"), start=100.0, duration=100.0),
    EmergentEvent(name="missed", tags=("x", "y"), start=100.0, duration=100.0),
])


RANKINGS = [
    ranking_with([("noise", "only")], timestamp=50.0),
    ranking_with([("a", "b"), ("noise", "only")], timestamp=150.0),
    ranking_with([("a", "b")], timestamp=250.0),
]


class TestGroundTruthMatcher:
    def test_outcomes_per_event(self):
        matcher = GroundTruthMatcher(SCHEDULE, k=5)
        outcomes = {o.event.name: o for o in matcher.outcomes(RANKINGS)}
        assert outcomes["detected"].detected
        assert outcomes["detected"].latency == pytest.approx(50.0)
        assert outcomes["detected"].best_rank == 0
        assert not outcomes["missed"].detected
        assert outcomes["missed"].latency is None

    def test_recall(self):
        matcher = GroundTruthMatcher(SCHEDULE, k=5)
        assert matcher.recall(RANKINGS) == pytest.approx(0.5)

    def test_recall_of_empty_schedule_is_one(self):
        matcher = GroundTruthMatcher(EventSchedule(), k=5)
        assert matcher.recall(RANKINGS) == 1.0

    def test_mean_latency(self):
        matcher = GroundTruthMatcher(SCHEDULE, k=5)
        assert matcher.mean_latency(RANKINGS) == pytest.approx(50.0)

    def test_mean_latency_none_when_nothing_detected(self):
        matcher = GroundTruthMatcher(SCHEDULE, k=5)
        assert matcher.mean_latency([RANKINGS[0]]) is None

    def test_detection_window_limits_late_detections(self):
        matcher = GroundTruthMatcher(SCHEDULE, k=5, detection_window=10.0)
        outcomes = {o.event.name: o for o in matcher.outcomes(RANKINGS)}
        assert not outcomes["detected"].detected

    def test_precision_counts_truth_pairs_during_events(self):
        matcher = GroundTruthMatcher(SCHEDULE, k=5)
        # Only the ranking at t=150 falls inside an active event window;
        # it reports 2 pairs of which 1 is ground truth.
        assert matcher.precision(RANKINGS) == pytest.approx(0.5)

    def test_precision_zero_without_rankings_during_events(self):
        matcher = GroundTruthMatcher(SCHEDULE, k=5)
        assert matcher.precision([RANKINGS[0]]) == 0.0

    def test_k_validation(self):
        with pytest.raises(ValueError):
            GroundTruthMatcher(SCHEDULE, k=0)

    def test_outcome_pair_accessor(self):
        matcher = GroundTruthMatcher(SCHEDULE, k=5)
        outcome = matcher.outcomes(RANKINGS)[0]
        assert outcome.pair == TagPair("a", "b")
