"""Tests for the plain-text reporting helpers."""

from repro.evaluation.reporting import format_series, format_table


class TestFormatTable:
    def test_renders_rows_and_header(self):
        rows = [
            {"detector": "enblogue", "recall": 1.0},
            {"detector": "twitter-monitor", "recall": 0.25},
        ]
        table = format_table(rows, title="comparison")
        assert "comparison" in table
        assert "detector" in table
        assert "enblogue" in table
        assert "0.250" in table

    def test_column_subset_and_order(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        table = format_table(rows, columns=["c", "a"])
        header = table.splitlines()[0]
        assert header.index("c") < header.index("a")
        assert "b" not in header

    def test_none_rendered_as_dash(self):
        table = format_table([{"latency": None}])
        assert "-" in table

    def test_empty_rows(self):
        assert "(no rows)" in format_table([], title="t")

    def test_alignment_produces_equal_width_rows(self):
        rows = [{"name": "a", "value": 1}, {"name": "longer-name", "value": 22}]
        lines = format_table(rows).splitlines()
        assert len(lines[1]) == len(lines[2]) == len(lines[3])


class TestFormatSeries:
    def test_renders_named_series(self):
        text = format_series(
            {"correlation": [0.1, 0.2, 0.9], "prediction": [0.1, 0.1, 0.2]},
            x_values=[0, 1, 2],
            title="figure 1",
        )
        assert "figure 1" in text
        assert "correlation" in text
        assert "0.9" in text

    def test_uneven_series_lengths_are_padded(self):
        text = format_series({"a": [1.0, 2.0], "b": [1.0]})
        assert text.count("\n") >= 3

    def test_empty_series(self):
        assert "(no series)" in format_series({})

    def test_default_x_is_index(self):
        text = format_series({"a": [5.0, 6.0]})
        assert "0" in text and "1" in text
