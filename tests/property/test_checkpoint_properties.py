"""Property: checkpoint → restore → continue is bit-identical, always.

For random document streams and a random interruption point, an engine
checkpointed through the on-disk store and resumed — into shard counts 1,
2 or 4, on the serial or the process backend, including the 2→4 re-shard
path — must publish exactly the ranking sequence of an uninterrupted run.
The reference is the single ``EnBlogue`` engine, whose equivalence with
the sharded engine is pinned by the sharding suites; here the checkpoint
round trip (JSON + CRC + manifest) is part of the loop on every example.

The process-backend examples run under the "fork" start method to keep
pool churn affordable; the pinned "spawn" default is covered end to end by
``tests/persistence/test_engine_checkpoint.py``.
"""

import tempfile

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import EnBlogueConfig
from repro.core.engine import EnBlogue
from repro.datasets.documents import Document
from repro.persistence import load_engine
from repro.sharding import ProcessBackend, ShardedEnBlogue

tag_names = st.sampled_from(
    ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"]
)

#: Random streams as (positive time delta, tag set) steps; cumulative sums
#: give the non-decreasing timestamps every ingestion path requires.
document_steps = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=40.0, allow_nan=False),
        st.sets(tag_names, min_size=0, max_size=4),
    ),
    min_size=2,
    max_size=50,
)


def build_docs(steps):
    docs = []
    timestamp = 0.0
    for index, (delta, tags) in enumerate(steps):
        timestamp += delta
        docs.append(Document(
            timestamp=timestamp, doc_id=f"doc-{index}", tags=frozenset(tags),
        ))
    return docs


def config():
    return EnBlogueConfig(
        window_horizon=100.0,
        evaluation_interval=25.0,
        num_seeds=6,
        min_seed_count=1,
        min_pair_support=1,
        min_history=2,
        predictor="moving_average",
        predictor_window=3,
        history_length=6,
    )


def signature(engine):
    return [
        (ranking.timestamp, ranking.label, ranking.topics)
        for ranking in engine.ranking_history()
    ]


def interrupted_run(docs, cut, checkpoint_shards, resume_shards, backend):
    """Checkpoint at ``cut`` through the real store, resume, continue."""
    with tempfile.TemporaryDirectory() as directory:
        with ShardedEnBlogue(config(), num_shards=checkpoint_shards,
                             backend=backend(), chunk_size=7) as engine:
            engine.process_many(docs[:cut])
            engine.save_checkpoint(directory)
        resumed, _ = load_engine(
            directory, num_shards=resume_shards, backend=backend(),
        )
        with resumed:
            resumed.process_many(docs[cut:])
            return signature(resumed)


def serial_backend():
    return "serial"


def forked_process_backend():
    return ProcessBackend(start_method="fork")


@settings(max_examples=25, deadline=None)
@given(steps=document_steps, data=st.data())
def test_serial_checkpoint_restore_continue_bit_identical(steps, data):
    docs = build_docs(steps)
    reference = EnBlogue(config())
    reference.process_many(docs)
    expected = signature(reference)

    cut = data.draw(st.integers(min_value=0, max_value=len(docs)), label="cut")
    shards = data.draw(st.sampled_from([1, 2, 4]), label="shards")
    assert interrupted_run(docs, cut, shards, shards,
                           serial_backend) == expected


@settings(max_examples=25, deadline=None)
@given(steps=document_steps, data=st.data())
def test_reshard_on_restore_bit_identical(steps, data):
    docs = build_docs(steps)
    reference = EnBlogue(config())
    reference.process_many(docs)
    expected = signature(reference)

    cut = data.draw(st.integers(min_value=0, max_value=len(docs)), label="cut")
    checkpoint_shards = data.draw(st.sampled_from([1, 2, 4]),
                                  label="checkpoint_shards")
    resume_shards = data.draw(st.sampled_from([1, 2, 4]),
                              label="resume_shards")
    assert interrupted_run(docs, cut, checkpoint_shards, resume_shards,
                           serial_backend) == expected


@pytest.mark.parametrize(
    "checkpoint_shards,resume_shards", [(2, 2), (2, 4), (4, 1)],
)
@settings(max_examples=5, deadline=None)
@given(steps=document_steps, data=st.data())
def test_process_backend_checkpoint_restore_bit_identical(
    checkpoint_shards, resume_shards, steps, data
):
    docs = build_docs(steps)
    reference = EnBlogue(config())
    reference.process_many(docs)
    expected = signature(reference)

    cut = data.draw(st.integers(min_value=0, max_value=len(docs)), label="cut")
    assert interrupted_run(docs, cut, checkpoint_shards, resume_shards,
                           forked_process_backend) == expected
