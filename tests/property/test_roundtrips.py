"""Property-based round-trip and consistency tests (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.core.types import EmergentTopic, Ranking, TagPair
from repro.core.correlation import JaccardCorrelation
from repro.core.tracker import CorrelationTracker
from repro.portal.serialization import ranking_from_json, ranking_to_json
from repro.storage.time_index import TimePartitionedIndex
from repro.streams.item import StreamItem

tag_names = st.text(alphabet="abcdef", min_size=1, max_size=4)

scores = st.floats(min_value=0.0, max_value=10.0, allow_nan=False)


def _distinct_pair(names):
    a, b = names
    return TagPair(a, b)


tag_pairs = st.tuples(tag_names, tag_names).filter(lambda t: t[0] != t[1]).map(_distinct_pair)

topics = st.builds(
    EmergentTopic,
    pair=tag_pairs,
    score=scores,
    correlation=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    predicted_correlation=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    prediction_error=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    timestamp=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
)

rankings = st.builds(
    Ranking,
    timestamp=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    topics=st.lists(topics, max_size=10),
    label=st.text(alphabet="xyz-", max_size=8),
)


class TestSerializationRoundTrip:
    @settings(max_examples=50)
    @given(ranking=rankings)
    def test_json_round_trip_preserves_content(self, ranking):
        restored = ranking_from_json(ranking_to_json(ranking))
        assert restored.timestamp == ranking.timestamp
        assert restored.label == ranking.label
        assert restored.pairs() == ranking.pairs()
        for original, copy in zip(ranking, restored):
            assert copy.score == original.score
            assert copy.correlation == original.correlation

    @settings(max_examples=50)
    @given(ranking=rankings)
    def test_round_trip_preserves_ranking_order(self, ranking):
        restored = ranking_from_json(ranking_to_json(ranking))
        assert [t.pair for t in restored] == [t.pair for t in ranking]
        # The restored ranking is still sorted by decreasing score.
        restored_scores = [t.score for t in restored]
        assert restored_scores == sorted(restored_scores, reverse=True)


documents = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
        st.lists(tag_names, min_size=1, max_size=4, unique=True),
    ),
    min_size=1,
    max_size=40,
)


class TestCountingConsistency:
    @settings(max_examples=30)
    @given(docs=documents)
    def test_time_index_totals_match_tracker_with_unbounded_window(self, docs):
        """With a window covering everything, the streaming tracker and the
        batch time-partitioned index agree on counts and correlations."""
        ordered = sorted(docs, key=lambda d: d[0])
        tracker = CorrelationTracker(window_horizon=10_000.0, min_pair_support=1)
        index = TimePartitionedIndex(partition_length=50.0)
        for position, (timestamp, tags) in enumerate(ordered):
            tracker.observe(timestamp, tags)
            index.index(StreamItem(timestamp=timestamp, doc_id=f"d{position}",
                                   tags=frozenset(tags)))
        start, end = 0.0, 1000.0
        assert index.document_count(start, end) == tracker.document_count()
        measure = JaccardCorrelation()
        for pair in tracker.candidate_pairs(
                [tag for tag, _ in tracker.tag_window.top_tags(10)]):
            tag_pair = pair[0]
            assert index.tag_count(tag_pair.first, start, end) == tracker.tag_count(tag_pair.first)
            assert index.pair_count(tag_pair.first, tag_pair.second, start, end) == \
                tracker.pair_count(tag_pair)

    @settings(max_examples=30)
    @given(docs=documents)
    def test_pair_counts_never_exceed_tag_counts(self, docs):
        index = TimePartitionedIndex(partition_length=100.0)
        seen_tags = set()
        for position, (timestamp, tags) in enumerate(sorted(docs, key=lambda d: d[0])):
            index.index(StreamItem(timestamp=timestamp, doc_id=f"d{position}",
                                   tags=frozenset(tags)))
            seen_tags.update(tags)
        tags = sorted(seen_tags)
        for i in range(len(tags)):
            for j in range(i + 1, len(tags)):
                pair_count = index.pair_count(tags[i], tags[j], 0.0, 1000.0)
                assert pair_count <= index.tag_count(tags[i], 0.0, 1000.0)
                assert pair_count <= index.tag_count(tags[j], 0.0, 1000.0)
