"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

from hypothesis import given, settings, strategies as st

from repro.core.correlation import (
    CosineCorrelation,
    JaccardCorrelation,
    OverlapCorrelation,
    PairCounts,
    PmiCorrelation,
)
from repro.core.types import TagPair
from repro.sketches.bloom import BloomFilter
from repro.sketches.countmin import CountMinSketch
from repro.timeseries.predictors import (
    EwmaPredictor,
    LinearTrendPredictor,
    MovingAveragePredictor,
)
from repro.windows.aggregates import TagFrequencyWindow
from repro.windows.decay import DecayedMaximum, ExponentialDecay
from repro.windows.sliding import TimeSlidingWindow

# -- strategies ---------------------------------------------------------------

tag_names = st.text(alphabet="abcdefgh", min_size=1, max_size=4)

pair_counts = st.builds(
    lambda total, a, b, both: PairCounts(
        count_a=a, count_b=b,
        count_both=min(both, a, b),
        total_documents=max(total, a, b),
    ),
    total=st.integers(min_value=0, max_value=500),
    a=st.integers(min_value=0, max_value=200),
    b=st.integers(min_value=0, max_value=200),
    both=st.integers(min_value=0, max_value=200),
)

correlation_histories = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=2, max_size=30
)


# -- correlation measures ------------------------------------------------------------


class TestCorrelationMeasureProperties:
    @given(counts=pair_counts)
    def test_set_measures_are_bounded(self, counts):
        for measure in (JaccardCorrelation(), OverlapCorrelation(),
                        CosineCorrelation(), PmiCorrelation()):
            value = measure.value(counts)
            assert 0.0 <= value <= 1.0 + 1e-9

    @given(counts=pair_counts)
    def test_jaccard_never_exceeds_overlap_coefficient(self, counts):
        jaccard = JaccardCorrelation().value(counts)
        overlap = OverlapCorrelation().value(counts)
        assert jaccard <= overlap + 1e-9

    @given(counts=pair_counts)
    def test_zero_intersection_means_zero_correlation(self, counts):
        if counts.count_both == 0:
            assert JaccardCorrelation().value(counts) == 0.0
            assert CosineCorrelation().value(counts) == 0.0

    @given(
        a=st.integers(min_value=1, max_value=100),
        total=st.integers(min_value=1, max_value=400),
    )
    def test_identical_document_sets_have_maximal_correlation(self, a, total):
        counts = PairCounts(count_a=a, count_b=a, count_both=a,
                            total_documents=max(total, a))
        assert JaccardCorrelation().value(counts) == 1.0
        assert OverlapCorrelation().value(counts) == 1.0
        assert CosineCorrelation().value(counts) == 1.0


# -- tag pairs ---------------------------------------------------------------------


class TestTagPairProperties:
    @given(a=tag_names, b=tag_names)
    def test_construction_is_order_independent(self, a, b):
        if a == b:
            return
        assert TagPair(a, b) == TagPair(b, a)
        assert hash(TagPair(a, b)) == hash(TagPair(b, a))

    @given(a=tag_names, b=tag_names)
    def test_canonical_order_is_sorted(self, a, b):
        if a == b:
            return
        pair = TagPair(a, b)
        assert pair.first <= pair.second
        assert set(pair.as_tuple()) == {a, b}


# -- sliding windows ------------------------------------------------------------------


class TestWindowProperties:
    @given(
        timestamps=st.lists(st.floats(min_value=0.0, max_value=1000.0,
                                      allow_nan=False), min_size=1, max_size=60),
        horizon=st.floats(min_value=1.0, max_value=200.0, allow_nan=False),
    )
    def test_window_only_ever_holds_live_entries(self, timestamps, horizon):
        # The retention rule is "timestamp > now - horizon"; assert exactly
        # that form, since `now - entry.timestamp < horizon` is not float-safe
        # when the two subtractions round differently.
        window = TimeSlidingWindow(horizon)
        for timestamp in sorted(timestamps):
            window.append(timestamp)
            cutoff = timestamp - horizon
            assert all(entry.timestamp > cutoff for entry in window)

    @given(
        documents=st.lists(
            st.tuples(st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
                      st.lists(tag_names, min_size=1, max_size=4)),
            min_size=1, max_size=40,
        ),
        horizon=st.floats(min_value=1.0, max_value=100.0, allow_nan=False),
    )
    def test_tag_counts_never_exceed_document_count(self, documents, horizon):
        window = TagFrequencyWindow(horizon)
        for timestamp, tags in sorted(documents, key=lambda d: d[0]):
            window.add_document(timestamp, tags)
            for tag in window.tags():
                assert 0 < window.count(tag) <= window.document_count


# -- decay ---------------------------------------------------------------------------


class TestDecayProperties:
    @given(
        half_life=st.floats(min_value=0.1, max_value=1e6, allow_nan=False),
        elapsed=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        value=st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
    )
    def test_decay_never_amplifies(self, half_life, elapsed, value):
        decay = ExponentialDecay(half_life)
        decayed = decay.decay(value, elapsed)
        assert 0.0 <= decayed <= value + 1e-9

    @given(
        observations=st.lists(
            st.tuples(st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                      st.floats(min_value=0.0, max_value=10.0, allow_nan=False)),
            min_size=1, max_size=30,
        )
    )
    def test_decayed_maximum_dominates_every_decayed_observation(self, observations):
        decay = ExponentialDecay(half_life=10.0)
        tracker = DecayedMaximum(decay)
        ordered = sorted(observations, key=lambda item: item[0])
        for timestamp, value in ordered:
            tracker.update(timestamp, value)
        final_time = ordered[-1][0]
        final = tracker.value_at(final_time)
        for timestamp, value in ordered:
            assert final >= decay.decay(value, final_time - timestamp) - 1e-9


# -- predictors ------------------------------------------------------------------------


class TestPredictorProperties:
    @given(history=correlation_histories)
    def test_average_style_predictions_stay_within_range(self, history):
        low, high = min(history), max(history)
        for predictor in (MovingAveragePredictor(window=5), EwmaPredictor(alpha=0.4)):
            prediction = predictor.predict(history)
            assert low - 1e-9 <= prediction <= high + 1e-9

    @given(
        start=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        slope=st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
        length=st.integers(min_value=3, max_value=20),
    )
    def test_linear_predictor_is_exact_on_linear_series(self, start, slope, length):
        history = [start + slope * i for i in range(length)]
        prediction = LinearTrendPredictor(window=length).predict(history)
        expected = start + slope * length
        assert math.isclose(prediction, expected, rel_tol=1e-6, abs_tol=1e-6)

    @given(
        history=correlation_histories,
        value=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    def test_constant_history_means_zero_shift_error(self, history, value):
        from repro.core.shift import ShiftDetector
        detector = ShiftDetector(predictor=MovingAveragePredictor(window=5), min_history=2)
        constant = [value] * len(history)
        assert detector.prediction_error(constant, value) <= 1e-9


# -- sketches -----------------------------------------------------------------------------


class TestSketchProperties:
    @settings(max_examples=25)
    @given(keys=st.lists(tag_names, min_size=1, max_size=200))
    def test_count_min_never_underestimates(self, keys):
        sketch = CountMinSketch(width=64, depth=4)
        truth = {}
        for key in keys:
            sketch.add(key)
            truth[key] = truth.get(key, 0) + 1
        for key, count in truth.items():
            assert sketch.estimate(key) >= count

    @settings(max_examples=25)
    @given(keys=st.lists(tag_names, min_size=1, max_size=100))
    def test_bloom_filter_has_no_false_negatives(self, keys):
        bloom = BloomFilter(capacity=max(len(keys), 8))
        bloom.update(keys)
        assert all(key in bloom for key in keys)
