"""Property: base + journal chains round-trip bit-identically, always.

For random document streams, random checkpoint cadences (full re-bases
interleaved with delta segments at random cut points) and random shard
counts, a directory written as a delta chain must restore — through the
unchanged ``restore`` path, after the store folds the journal onto the
base — into an engine whose continuation publishes exactly the ranking
sequence of an uninterrupted run.  Two layers are pinned on every
example: the folded state equals the live engine's ``snapshot()`` dict
(so the journal loses nothing, bit for bit), and the resumed run's
rankings equal the reference — including chains that span a mid-chain
re-shard (resume into a different shard count, start a new chain, resume
again).
"""

import tempfile

from hypothesis import given, settings, strategies as st

from repro.core.config import EnBlogueConfig
from repro.core.engine import EnBlogue
from repro.datasets.documents import Document
from repro.persistence import load_engine, read_checkpoint
from repro.sharding import ShardedEnBlogue

tag_names = st.sampled_from(
    ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"]
)

#: Random streams as (positive time delta, tag set) steps; cumulative sums
#: give the non-decreasing timestamps every ingestion path requires.
document_steps = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=40.0, allow_nan=False),
        st.sets(tag_names, min_size=0, max_size=4),
    ),
    min_size=4,
    max_size=50,
)


def build_docs(steps):
    docs = []
    timestamp = 0.0
    for index, (delta, tags) in enumerate(steps):
        timestamp += delta
        docs.append(Document(
            timestamp=timestamp, doc_id=f"doc-{index}", tags=frozenset(tags),
        ))
    return docs


def config():
    return EnBlogueConfig(
        window_horizon=100.0,
        evaluation_interval=25.0,
        num_seeds=6,
        min_seed_count=1,
        min_pair_support=1,
        min_history=2,
        predictor="moving_average",
        predictor_window=3,
        history_length=6,
    )


def signature(engine):
    return [
        (ranking.timestamp, ranking.label, ranking.topics)
        for ranking in engine.ranking_history()
    ]


def draw_cuts(data, count):
    """A sorted run of cut points: base cut first, then delta-tick cuts."""
    cuts = data.draw(
        st.lists(st.integers(min_value=0, max_value=count),
                 min_size=1, max_size=5),
        label="cuts",
    )
    return sorted(cuts)


def write_chain(engine, docs, directory, cuts):
    """Replay up to each cut; base at the first, a journal segment after."""
    previous = 0
    for index, cut in enumerate(cuts):
        engine.process_many(docs[previous:cut])
        previous = cut
        if index == 0:
            engine.save_checkpoint(directory, track_deltas=True)
        else:
            engine.save_delta_checkpoint(directory)
    return previous


@settings(max_examples=25, deadline=None)
@given(steps=document_steps, data=st.data())
def test_single_engine_chain_restores_bit_identical(steps, data):
    docs = build_docs(steps)
    reference = EnBlogue(config())
    reference.process_many(docs)
    expected = signature(reference)

    cuts = draw_cuts(data, len(docs))
    with tempfile.TemporaryDirectory() as directory:
        engine = EnBlogue(config())
        cut = write_chain(engine, docs, directory, cuts)
        _, merged = read_checkpoint(directory)
        assert merged == engine.snapshot()
        resumed, _ = load_engine(directory)
        resumed.process_many(docs[cut:])
        assert signature(resumed) == expected


@settings(max_examples=25, deadline=None)
@given(steps=document_steps, data=st.data())
def test_sharded_chain_restores_bit_identical_across_shard_counts(steps, data):
    docs = build_docs(steps)
    reference = EnBlogue(config())
    reference.process_many(docs)
    expected = signature(reference)

    cuts = draw_cuts(data, len(docs))
    checkpoint_shards = data.draw(st.sampled_from([1, 2, 4]),
                                  label="checkpoint_shards")
    resume_shards = data.draw(st.sampled_from([1, 2, 4]),
                              label="resume_shards")
    with tempfile.TemporaryDirectory() as directory:
        with ShardedEnBlogue(config(), num_shards=checkpoint_shards,
                             backend="serial", chunk_size=7) as engine:
            cut = write_chain(engine, docs, directory, cuts)
            _, merged = read_checkpoint(directory)
            assert merged == engine.snapshot()
        resumed, _ = load_engine(directory, num_shards=resume_shards)
        with resumed:
            resumed.process_many(docs[cut:])
            assert signature(resumed) == expected


@settings(max_examples=15, deadline=None)
@given(steps=document_steps, data=st.data())
def test_chain_spanning_a_mid_chain_reshard(steps, data):
    """Chain → resume re-sharded → new chain → resume again, still exact."""
    docs = build_docs(steps)
    reference = EnBlogue(config())
    reference.process_many(docs)
    expected = signature(reference)

    first_shards = data.draw(st.sampled_from([1, 2, 4]), label="first_shards")
    middle_shards = data.draw(st.sampled_from([1, 2, 4]),
                              label="middle_shards")
    final_shards = data.draw(st.sampled_from([1, 2, 4]), label="final_shards")
    first_cuts = draw_cuts(data, len(docs) // 2)
    handoff = first_cuts[-1]
    second_cut = data.draw(
        st.integers(min_value=handoff, max_value=len(docs)),
        label="second_cut",
    )
    with tempfile.TemporaryDirectory() as directory:
        with ShardedEnBlogue(config(), num_shards=first_shards,
                             backend="serial", chunk_size=7) as engine:
            write_chain(engine, docs, directory, first_cuts)
        middle, _ = load_engine(directory, num_shards=middle_shards)
        with middle:
            # Restoring compacted base + journal; the new chain re-bases.
            middle.process_many(docs[handoff:second_cut])
            middle.save_checkpoint(directory, track_deltas=True)
            middle.save_delta_checkpoint(directory)
            _, merged = read_checkpoint(directory)
            assert merged == middle.snapshot()
        final, _ = load_engine(directory, num_shards=final_shards)
        with final:
            final.process_many(docs[second_cut:])
            assert signature(final) == expected
