"""Property tests for pair partitioning (the sharding correctness core).

Two invariants make scatter-gather detection equivalent to the single
engine: every observed pair is owned by *exactly one* shard, and the union
of the shard-local candidate sets equals the single tracker's candidate
set.  Both are checked here on randomized streams, seed sets and shard
counts.
"""

from hypothesis import given, settings, strategies as st

from repro.core.engine import make_tracker
from repro.core.config import EnBlogueConfig
from repro.core.tracker import CorrelationTracker, DocumentDecomposer
from repro.sharding.partitioner import PairPartitioner

tag_names = st.sampled_from(
    ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"]
)

documents = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
        st.sets(tag_names, min_size=0, max_size=5),
    ),
    min_size=1,
    max_size=40,
)


@settings(max_examples=150, deadline=None)
@given(
    docs=documents,
    num_shards=st.integers(min_value=1, max_value=6),
)
def test_every_observed_pair_has_exactly_one_owner(docs, num_shards):
    partitioner = PairPartitioner(num_shards)
    decomposer = DocumentDecomposer()
    for _, tags in docs:
        _, pairs = decomposer.decompose(frozenset(tags))
        for pair in pairs:
            owners = [
                shard for shard in range(num_shards)
                if partitioner.shard_of(pair) == shard
            ]
            assert len(owners) == 1
        # split() routes each pair to precisely its owner, dropping none.
        split = partitioner.split(pairs)
        routed = [pair for shard_pairs in split.values() for pair in shard_pairs]
        assert sorted(routed) == sorted(pairs)


@settings(max_examples=100, deadline=None)
@given(
    docs=documents,
    seeds=st.sets(tag_names, max_size=4),
    num_shards=st.integers(min_value=1, max_value=5),
    min_support=st.integers(min_value=1, max_value=3),
    horizon=st.floats(min_value=10.0, max_value=400.0, allow_nan=False),
)
def test_union_of_shard_candidates_equals_single_tracker(
    docs, seeds, num_shards, min_support, horizon
):
    ordered_docs = sorted(docs, key=lambda d: d[0])
    config = EnBlogueConfig(
        window_horizon=horizon, evaluation_interval=horizon,
        min_pair_support=min_support,
    )

    single = CorrelationTracker(window_horizon=horizon,
                                min_pair_support=min_support)
    for timestamp, tags in ordered_docs:
        single.observe(timestamp, frozenset(tags))

    partitioner = PairPartitioner(num_shards)
    decomposer = DocumentDecomposer()
    shards = [make_tracker(config, track_usage=False)
              for _ in range(num_shards)]
    for timestamp, tags in ordered_docs:
        _, pairs = decomposer.decompose(frozenset(tags))
        for shard_id, event in partitioner.split_event(timestamp, pairs):
            shards[shard_id].observe_pair_events([event])
        # Empty documents still advance every shard's window, mirroring the
        # coordinator's eviction-by-broadcast at evaluation time.
        for shard in shards:
            shard.advance_to(timestamp)

    single_candidates = single.candidate_pairs(seeds)
    union = []
    for shard in shards:
        union.extend(shard.candidate_pairs(seeds))
    assert sorted(union, key=lambda item: item[0]) == single_candidates

    # The shard-local live-pair sets partition the single tracker's.
    single_pairs = dict(single.candidate_index.items())
    shard_pairs = {}
    for shard in shards:
        for pair, count in shard.candidate_index.items():
            assert pair not in shard_pairs, "pair owned by two shards"
            shard_pairs[pair] = count
    assert shard_pairs == single_pairs
