"""Property test: indexed candidate generation equals the brute-force scan.

The seed revision computed candidates by scanning every windowed pair at
evaluation time; the postings index maintains them incrementally across
arrivals and evictions.  On randomized streams the two must agree exactly —
same ``(pair, seed_tag)`` list, same order.
"""

from hypothesis import given, settings, strategies as st

from repro.core.tracker import CorrelationTracker
from repro.core.types import TagPair

tag_names = st.sampled_from(
    ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"]
)

documents = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
        st.sets(tag_names, min_size=0, max_size=4),
    ),
    min_size=1,
    max_size=40,
)


def brute_force_candidates(tracker, seeds):
    """The seed revision's scan, reimplemented from the tracker's live pairs."""
    seed_set = set(seeds)
    if not seed_set:
        return []
    candidates = []
    for pair, count in tracker.candidate_index.items():
        if count < tracker.min_pair_support:
            continue
        if pair.first in seed_set:
            candidates.append((pair, pair.first))
        elif pair.second in seed_set:
            candidates.append((pair, pair.second))
    candidates.sort(key=lambda item: item[0])
    return candidates


@settings(max_examples=150, deadline=None)
@given(
    docs=documents,
    seeds=st.sets(tag_names, max_size=4),
    min_support=st.integers(min_value=1, max_value=3),
    horizon=st.floats(min_value=10.0, max_value=400.0, allow_nan=False),
)
def test_indexed_candidates_match_brute_force_scan(docs, seeds, min_support, horizon):
    tracker = CorrelationTracker(window_horizon=horizon,
                                 min_pair_support=min_support)
    for timestamp, tags in sorted(docs, key=lambda d: d[0]):
        tracker.observe(timestamp, tags)
    assert tracker.candidate_pairs(seeds) == brute_force_candidates(tracker, seeds)


@settings(max_examples=100, deadline=None)
@given(
    docs=documents,
    seeds=st.sets(tag_names, max_size=4),
    chunk=st.integers(min_value=1, max_value=7),
)
def test_batched_ingestion_matches_sequential_then_brute_force(docs, seeds, chunk):
    ordered = sorted(docs, key=lambda d: d[0])
    sequential = CorrelationTracker(window_horizon=120.0, min_pair_support=2)
    for timestamp, tags in ordered:
        sequential.observe(timestamp, tags)
    batched = CorrelationTracker(window_horizon=120.0, min_pair_support=2)
    for start in range(0, len(ordered), chunk):
        batched.observe_many(
            (timestamp, tags, ()) for timestamp, tags in ordered[start:start + chunk]
        )
    assert dict(sequential.candidate_index.items()) \
        == dict(batched.candidate_index.items())
    assert sequential.candidate_pairs(seeds) == batched.candidate_pairs(seeds)
    assert batched.candidate_pairs(seeds) == brute_force_candidates(batched, seeds)


@settings(max_examples=100, deadline=None)
@given(docs=documents)
def test_postings_and_counts_stay_consistent(docs):
    """Every live pair appears in exactly its two tags' postings."""
    tracker = CorrelationTracker(window_horizon=80.0, min_pair_support=1)
    for timestamp, tags in sorted(docs, key=lambda d: d[0]):
        tracker.observe(timestamp, tags)
    index = tracker.candidate_index
    live = dict(index.items())
    assert len(live) == len(index)
    for pair, count in live.items():
        assert count > 0
        assert pair in index.pairs_for(pair.first)
        assert pair in index.pairs_for(pair.second)
    # No postings entry without a live pair.
    for tag, postings in index._postings.items():
        for pair in postings:
            assert pair in live
            assert tag in (pair.first, pair.second)
