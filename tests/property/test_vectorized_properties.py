"""Property tests: the vectorized evaluation hot path is bit-identical.

The numpy-batched kernels in :mod:`repro.core.vectorized` are a pure
performance rewrite of the scalar evaluation loop — not an approximation.
On randomized streams the two paths must agree *exactly*:

- tracker-level sampling returns equal :class:`PairObservation` lists
  (every float, every count) for all four vectorizable measures;
- whole-engine rankings (sampling + shift scoring + top-k) are equal
  across every vectorizable measure × predictor combination;
- the threads shard backend matches the serial backend for shard counts
  1, 2 and 4, including through a mid-stream checkpoint → restore.

Equality is dataclass equality on floats — no tolerances anywhere.
"""

import pytest

from hypothesis import given, settings, strategies as st

from repro.core.config import EnBlogueConfig
from repro.core.correlation import (
    CosineCorrelation,
    JaccardCorrelation,
    OverlapCorrelation,
    PmiCorrelation,
)
from repro.core.engine import EnBlogue
from repro.core.tracker import CorrelationTracker
from repro.core.vectorized import NUMPY_AVAILABLE
from repro.datasets.documents import Document
from repro.sharding import ShardedEnBlogue
from repro.windows.aggregates import TagFrequencyWindow

pytestmark = pytest.mark.skipif(
    not NUMPY_AVAILABLE, reason="vectorized path requires numpy"
)

HOUR = 3600.0

tag_names = st.sampled_from(
    ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"]
)

documents = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
        st.sets(tag_names, min_size=0, max_size=4),
    ),
    min_size=1,
    max_size=40,
)

measures = st.sampled_from([
    JaccardCorrelation(),
    OverlapCorrelation(),
    CosineCorrelation(),
    PmiCorrelation(),
])


@settings(max_examples=100, deadline=None)
@given(
    docs=documents,
    seeds=st.sets(tag_names, max_size=4),
    measure=measures,
    min_support=st.integers(min_value=1, max_value=3),
    horizon=st.floats(min_value=10.0, max_value=400.0, allow_nan=False),
)
def test_vectorized_sampling_equals_scalar(
    docs, seeds, measure, min_support, horizon
):
    ordered = sorted(docs, key=lambda d: d[0])
    scalar = CorrelationTracker(window_horizon=horizon, measure=measure,
                                min_pair_support=min_support,
                                vectorize=False)
    batched = CorrelationTracker(window_horizon=horizon, measure=measure,
                                 min_pair_support=min_support,
                                 vectorize=True)
    assert scalar.sampling_path == "scalar"
    assert batched.sampling_path == "vectorized"

    # Coordinator-style global statistics, independent of either tracker.
    window = TagFrequencyWindow(horizon)
    chunk = max(1, len(ordered) // 3)
    latest = 0.0
    for start in range(0, len(ordered), chunk):
        for timestamp, tags in ordered[start:start + chunk]:
            scalar.observe(timestamp, frozenset(tags))
            batched.observe(timestamp, frozenset(tags))
            window.add_document(timestamp, tags)
            latest = timestamp
        window.advance_to(latest)
        left = scalar.sample_candidates(
            latest, seeds, window.counts, window.document_count
        )
        right = batched.sample_candidates(
            latest, seeds, window.counts, window.document_count
        )
        key = lambda obs: obs.pair
        assert sorted(left, key=key) == sorted(right, key=key)
    # Appended correlation histories must agree too (they feed prediction).
    for pair, series in scalar.history_map.items():
        assert batched.history(pair).values == series.values


engine_documents = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=200),
        st.sets(tag_names, min_size=1, max_size=4),
    ),
    min_size=5,
    max_size=50,
)


def engine_config(measure_name, predictor_name):
    return EnBlogueConfig(
        name="prop",
        window_horizon=6 * HOUR,
        evaluation_interval=HOUR,
        num_seeds=10,
        min_seed_count=1,
        min_pair_support=1,
        min_history=2,
        correlation_measure=measure_name,
        predictor=predictor_name,
        predictor_window=3,
    )


def as_docs(raw):
    ordered = sorted(raw, key=lambda d: d[0])
    return [
        Document(timestamp=minute * 60.0, doc_id=f"doc-{index}",
                 tags=frozenset(tags))
        for index, (minute, tags) in enumerate(ordered)
    ]


def run(engine, docs):
    rankings = engine.process_many(docs)
    final = engine.evaluate_now()
    return rankings + [final]


@settings(max_examples=40, deadline=None)
@given(
    raw=engine_documents,
    measure_name=st.sampled_from(["jaccard", "overlap", "cosine", "pmi"]),
    predictor_name=st.sampled_from(
        ["last", "moving_average", "ewma", "linear", "holt"]
    ),
)
def test_vectorized_engine_rankings_equal_scalar(
    raw, measure_name, predictor_name
):
    docs = as_docs(raw)
    cfg = engine_config(measure_name, predictor_name)
    scalar_engine = EnBlogue(cfg, vectorize=False)
    batched_engine = EnBlogue(cfg, vectorize=True)
    assert scalar_engine.evaluation_path == "scalar"
    assert batched_engine.evaluation_path == "vectorized"
    assert run(scalar_engine, docs) == run(batched_engine, docs)


@settings(max_examples=15, deadline=None)
@given(
    raw=engine_documents,
    num_shards=st.sampled_from([1, 2, 4]),
    vectorize=st.booleans(),
)
def test_threads_backend_equals_serial(raw, num_shards, vectorize):
    docs = as_docs(raw)
    cfg = engine_config("jaccard", "moving_average")
    with ShardedEnBlogue(cfg, num_shards=num_shards, backend="serial",
                         vectorize=vectorize) as serial:
        expected = run(serial, docs)
    with ShardedEnBlogue(cfg, num_shards=num_shards, backend="threads",
                         vectorize=vectorize) as threaded:
        assert run(threaded, docs) == expected


@settings(max_examples=10, deadline=None)
@given(
    raw=engine_documents,
    num_shards=st.sampled_from([1, 2, 4]),
    restore_shards=st.sampled_from([1, 2, 4]),
)
def test_threads_backend_checkpoint_restore_mid_stream(
    raw, num_shards, restore_shards
):
    docs = as_docs(raw)
    cfg = engine_config("jaccard", "moving_average")
    with ShardedEnBlogue(cfg, num_shards=num_shards,
                         backend="serial") as serial:
        serial.process_many(docs)
        expected = serial.evaluate_now()

    cut = len(docs) // 2
    with ShardedEnBlogue(cfg, num_shards=num_shards,
                         backend="threads") as first:
        first.process_many(docs[:cut])
        state = first.snapshot()
    # Restore into a fresh threads engine — possibly re-sharded — and
    # replay the rest of the stream.
    with ShardedEnBlogue(cfg, num_shards=restore_shards,
                         backend="threads") as second:
        second.restore(state)
        second.process_many(docs[cut:])
        assert second.evaluate_now() == expected
