"""Hypothesis properties for the sketch tier's degenerate thresholds.

``promote_support`` of 0 or 1 means "admit on first sight" — the tier
must vanish entirely and the engine must be bit-identical to exact
tracking on *any* stream, not just the curated fixtures.
"""

from dataclasses import dataclass
from typing import Tuple

from hypothesis import given, settings, strategies as st

from repro.core.config import EnBlogueConfig
from repro.core.engine import EnBlogue

CONFIG = EnBlogueConfig(
    window_horizon=50.0,
    evaluation_interval=10.0,
    num_seeds=5,
    min_seed_count=1,
    min_pair_support=1,
    min_history=2,
    predictor="moving_average",
    predictor_window=3,
)


@dataclass(frozen=True)
class Document:
    timestamp: float
    tags: Tuple[str, ...]


tag_sets = st.lists(
    st.sampled_from(["a", "b", "c", "d", "e", "f"]),
    min_size=1, max_size=4, unique=True,
)

streams = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=200.0, allow_nan=False),
        tag_sets,
    ),
    min_size=1, max_size=60,
).map(lambda rows: [
    Document(timestamp, tuple(tags))
    for timestamp, tags in sorted(rows, key=lambda row: row[0])
])


def signature(engine):
    return [
        [(topic.pair, topic.score) for topic in ranking.topics]
        for ranking in engine.ranking_history()
    ]


def replay(config, docs):
    engine = EnBlogue(config)
    for document in docs:
        engine.process(document)
    engine.evaluate_now()
    return engine


class TestDegenerateTierProperty:
    @settings(max_examples=40, deadline=None)
    @given(docs=streams, threshold=st.sampled_from([0, 1]))
    def test_thresholds_below_two_match_exact_bit_for_bit(
        self, docs, threshold
    ):
        exact = replay(CONFIG, docs)
        tiered = replay(
            CONFIG.with_overrides(
                tracking="tiered", promote_support=threshold
            ),
            docs,
        )
        assert signature(tiered) == signature(exact)
        assert tiered.tracker.snapshot() == exact.tracker.snapshot()
