"""Resume continuity for the whole observability story.

The registry round-trip is pinned in test_metrics_registry; this file
pins the *bundle*: SLO counters, event-log sequence numbers, and
profiler sample totals must all continue monotonically when a serve is
checkpointed, the process dies, and a fresh bundle restores from the
manifest extras — the exact path the CLI's ``--resume`` takes.
"""

import json
import threading

from repro.cli import _metrics_extras_provider, _restore_metrics
from repro.core.config import EnBlogueConfig
from repro.core.engine import EnBlogue
from repro.datasets.twitter import TweetStreamGenerator
from repro.observability import Observability
from repro.persistence import CheckpointCadence, load_engine

HOUR = 3600.0


def config(**overrides):
    defaults = dict(
        window_horizon=6 * HOUR,
        evaluation_interval=HOUR,
        num_seeds=10,
        min_seed_count=1,
        min_pair_support=1,
        min_history=2,
        predictor="moving_average",
        predictor_window=3,
    )
    defaults.update(overrides)
    return EnBlogueConfig(**defaults)


def make_documents(count):
    corpus, _ = TweetStreamGenerator(
        hours=12, tweets_per_hour=30, seed=17).generate()
    return list(corpus)[:count]


class TestManifestRide:
    def test_bundle_snapshot_rides_the_checkpoint_manifest(self, tmp_path):
        documents = make_documents(240)
        observability = Observability()
        engine = EnBlogue(config(), observability=observability)
        cadence = CheckpointCadence(
            engine, directory=tmp_path,
            extras={"dataset": "twitter"},
            extras_provider=_metrics_extras_provider(observability),
        )
        for start in range(0, 120, 40):
            engine.process_batch(documents[start:start + 40])
            observability.log.emit("batch", documents=40)
            observability.slo.tick()
        # A few profiler samples so the total is non-zero: sample_once
        # skips the calling thread, so give it another one to see.
        stop = threading.Event()
        helper = threading.Thread(target=stop.wait, daemon=True)
        helper.start()
        try:
            while observability.profiler.samples_total == 0:
                observability.profiler.sample_once()
        finally:
            stop.set()
            helper.join()
        cadence.finalize()

        sequence_before = observability.log.sequence
        samples_before = observability.profiler.samples_total
        ticks_before = observability.registry.counter(
            "repro_slo_ticks_total").value
        assert sequence_before > 0 and samples_before > 0 and ticks_before > 0

        # "New process": a fresh bundle restored from the manifest, the
        # way the CLI's --resume path does it.
        resumed_engine, manifest = load_engine(tmp_path)
        snapshot = manifest["extras"]["metrics"]
        # The extras must have survived the manifest's JSON trip.
        snapshot = json.loads(json.dumps(snapshot))
        fresh = Observability()
        _restore_metrics(fresh, {"extras": {"metrics": snapshot}})

        assert fresh.log.sequence == sequence_before
        assert fresh.profiler.samples_total == samples_before
        assert fresh.registry.counter(
            "repro_slo_ticks_total").value == ticks_before

        # And the story continues monotonically, never resets.
        record = fresh.log.emit("resumed")
        assert record["seq"] == sequence_before + 1
        fresh.profiler.sample_once()
        assert fresh.profiler.samples_total >= samples_before
        fresh.slo.tick()
        assert fresh.registry.counter(
            "repro_slo_ticks_total").value == ticks_before + 1
        assert resumed_engine.documents_processed == 120

    def test_disabled_bundle_writes_no_metrics_extras(self, tmp_path):
        engine = EnBlogue(config())
        cadence = CheckpointCadence(
            engine, directory=tmp_path,
            extras_provider=_metrics_extras_provider(None),
        )
        engine.process_batch(make_documents(40))
        cadence.finalize()
        _engine, manifest = load_engine(tmp_path)
        assert "metrics" not in manifest.get("extras", {})
