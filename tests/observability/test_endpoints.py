"""GET /metrics, /trace, /profile, /logs and /slo over a live server."""

import asyncio
import json

import pytest

from repro.core.config import EnBlogueConfig
from repro.core.engine import EnBlogue
from repro.datasets.twitter import TweetStreamGenerator
from repro.observability import (
    NDJSON_CONTENT_TYPE,
    PROMETHEUS_CONTENT_TYPE,
    Observability,
    parse_prometheus_families,
)
from repro.serving import DetectionService, RankingServer

HOUR = 3600.0


def config(**overrides):
    defaults = dict(
        window_horizon=6 * HOUR,
        evaluation_interval=HOUR,
        num_seeds=10,
        min_seed_count=1,
        min_pair_support=1,
        min_history=2,
        predictor="moving_average",
        predictor_window=3,
    )
    defaults.update(overrides)
    return EnBlogueConfig(**defaults)


@pytest.fixture(scope="module")
def docs():
    corpus, _ = TweetStreamGenerator(
        hours=12, tweets_per_hour=30, seed=11).generate()
    return list(corpus)


async def raw_request(port, method, path, body=None):
    """One request; returns (status, headers, body bytes)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = b"" if body is None else json.dumps(body).encode("utf-8")
    writer.write((
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: localhost\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: close\r\n\r\n"
    ).encode("latin-1") + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    header_blob, _, body_blob = raw.partition(b"\r\n\r\n")
    lines = header_blob.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ", 2)[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, body_blob


async def serve_ingested(docs, count=256):
    """A started service+server with ``count`` documents processed."""
    engine = EnBlogue(config(), observability=Observability())
    # The service adopts the engine's enabled bundle: one registry for
    # the whole stack, exactly like the CLI's serve wiring.
    service = DetectionService(engine)
    await service.start()
    server = RankingServer(service, port=0)
    await server.start()
    await service.submit(docs[:count])
    await service.drain()
    return engine, service, server


async def teardown(service, server):
    await server.stop()
    await service.stop()


class TestMetricsEndpoint:
    def test_scrape_is_valid_and_covers_the_pipeline(self, docs):
        async def scenario():
            _engine, service, server = await serve_ingested(docs)
            status, headers, body = await raw_request(
                server.port, "GET", "/metrics")
            await teardown(service, server)
            return status, headers, body.decode("utf-8")

        status, headers, text = asyncio.run(scenario())
        assert status == 200
        assert headers["content-type"] == PROMETHEUS_CONTENT_TYPE
        families = parse_prometheus_families(text)  # raises when malformed
        # Every layer of the pipeline reports under the one contract.
        for required in (
            "repro_core_documents_total",
            "repro_core_evaluation_seconds",
            "repro_pipeline_stage_seconds",
            "repro_sharding_dispatch_seconds",
            "repro_serving_documents_processed_total",
            "repro_serving_sse_frames_total",
            "repro_persistence_checkpoint_seconds",
        ):
            assert required in families, required
        # /status and /metrics read the same counters, so the scrape
        # carries real values, not just declarations.
        assert "repro_core_documents_total 256" in text
        assert "repro_serving_documents_processed_total 256" in text
        assert 'repro_core_evaluation_seconds_count{path="' in text

    def test_status_and_metrics_agree(self, docs):
        async def scenario():
            _engine, service, server = await serve_ingested(docs)
            metrics_status, _headers, body = await raw_request(
                server.port, "GET", "/metrics")
            status_code, _headers, status_body = await raw_request(
                server.port, "GET", "/status")
            await teardown(service, server)
            return body.decode("utf-8"), json.loads(status_body)

        text, status = asyncio.run(scenario())
        expected = status["documents_processed"]
        assert f"repro_serving_documents_processed_total {expected}" in text
        assert f"repro_serving_rankings_published_total " \
               f"{status['rankings_published']}" in text


class TestTraceEndpoint:
    def test_trace_returns_wellformed_ndjson_span_trees(self, docs):
        async def scenario():
            _engine, service, server = await serve_ingested(docs, count=200)
            # Two more batches so /trace holds several per-batch trees
            # and the ``last=`` cap has something to cut.
            for start in (200, 230):
                await service.submit(docs[start:start + 30])
            await service.drain()
            status, headers, body = await raw_request(
                server.port, "GET", "/trace?last=50")
            capped_status, _h, capped = await raw_request(
                server.port, "GET", "/trace?last=2")
            await teardown(service, server)
            return status, headers, body, capped_status, capped

        status, headers, body, capped_status, capped = asyncio.run(scenario())
        assert status == 200 and capped_status == 200
        assert headers["content-type"] == NDJSON_CONTENT_TYPE
        traces = [json.loads(line)
                  for line in body.decode("utf-8").strip().splitlines()]
        assert traces, "ingest must leave per-batch traces behind"
        batches = [t for t in traces if t["trace_id"].startswith("batch-")]
        assert batches
        for trace in traces:
            assert set(trace) == {"trace_id", "spans"}
            for span in trace["spans"]:
                assert {"span_id", "name", "start",
                        "duration_us"} <= set(span)
        # The batch root span carries the stage tree under it.
        root = batches[0]["spans"][0]
        child_names = {child["name"]
                       for child in root.get("children", [])}
        assert "ingest" in child_names
        assert len(capped.decode("utf-8").strip().splitlines()) == 2

    def test_trace_rejects_malformed_last(self, docs):
        async def scenario():
            _engine, service, server = await serve_ingested(docs, count=8)
            results = []
            for query in ("last=-1", "last=abc"):
                status, _headers, _body = await raw_request(
                    server.port, "GET", f"/trace?{query}")
                results.append(status)
            await teardown(service, server)
            return results

        assert asyncio.run(scenario()) == [400, 400]


class TestProfileEndpoint:
    def test_collapsed_profile_of_a_busy_server(self, docs):
        async def scenario():
            _engine, service, server = await serve_ingested(docs, count=64)
            # Keep the engine busy while the profile window runs so the
            # samples catch real work, not just the idle event loop.
            ingest = asyncio.ensure_future(service.submit(docs[64:256]))
            status, headers, body = await raw_request(
                server.port, "GET", "/profile?seconds=0.3")
            await ingest
            await service.drain()
            json_status, _h, json_body = await raw_request(
                server.port, "GET", "/profile?seconds=0.1&format=json")
            await teardown(service, server)
            return status, headers, body.decode(), json_status, json_body

        status, headers, body, json_status, json_body = asyncio.run(scenario())
        assert status == 200
        assert headers["content-type"].startswith("text/plain")
        lines = body.strip().splitlines()
        assert lines, "a busy 300ms window must capture samples"
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            assert int(count) >= 1
            assert ";" in stack or "(" in stack
        assert json_status == 200
        payload = json.loads(json_body)
        assert set(payload) == {"seconds", "samples", "stacks"}
        assert payload["samples"] == sum(payload["stacks"].values())

    def test_profile_stops_when_it_started_the_sampler(self, docs):
        async def scenario():
            _engine, service, server = await serve_ingested(docs, count=8)
            profiler = service.observability.profiler
            await raw_request(server.port, "GET", "/profile?seconds=0.05")
            stopped_after = profiler.running
            profiler.start()
            await raw_request(server.port, "GET", "/profile?seconds=0.05")
            kept_running = profiler.running
            await teardown(service, server)
            profiler.stop()
            return stopped_after, kept_running

        stopped_after, kept_running = asyncio.run(scenario())
        assert stopped_after is False  # one-shot windows clean up
        assert kept_running is True    # a continuous sampler is left alone

    def test_profile_rejects_malformed_parameters(self, docs):
        async def scenario():
            _engine, service, server = await serve_ingested(docs, count=8)
            codes = []
            for query in ("seconds=abc", "seconds=-1", "seconds=9999",
                          "format=xml"):
                status, _h, _b = await raw_request(
                    server.port, "GET", f"/profile?{query}")
                codes.append(status)
            await teardown(service, server)
            return codes

        assert asyncio.run(scenario()) == [400, 400, 400, 400]


class TestLogsEndpoint:
    def test_logs_are_ndjson_with_trace_correlated_batch_records(self, docs):
        async def scenario():
            _engine, service, server = await serve_ingested(docs)
            status, headers, body = await raw_request(
                server.port, "GET", "/logs?last=200")
            trace_status, _h, trace_body = await raw_request(
                server.port, "GET", "/trace?last=50")
            await teardown(service, server)
            return status, headers, body.decode(), trace_body.decode()

        status, headers, text, trace_text = asyncio.run(scenario())
        assert status == 200
        assert headers["content-type"] == NDJSON_CONTENT_TYPE
        records = [json.loads(line) for line in text.strip().splitlines()]
        for record in records:
            assert {"seq", "ts", "level", "event"} <= set(record)
        sequences = [record["seq"] for record in records]
        assert sequences == sorted(sequences)
        batches = [r for r in records if r["event"] == "batch"]
        assert batches and batches[0]["documents"] > 0
        # The batch record carries the trace id of the span tree /trace
        # shows for the same batch — the log↔trace correlation contract.
        trace_ids = {json.loads(line)["trace_id"]
                     for line in trace_text.strip().splitlines()}
        assert batches[0]["trace_id"] in trace_ids
        requests = [r for r in records if r["event"] == "http_request"]
        assert any(r["path"] == "/logs" for r in requests)

    def test_logs_last_caps_and_rejects_garbage(self, docs):
        async def scenario():
            _engine, service, server = await serve_ingested(docs, count=8)
            _s, _h, capped = await raw_request(
                server.port, "GET", "/logs?last=1")
            bad_status, _h, _b = await raw_request(
                server.port, "GET", "/logs?last=nope")
            await teardown(service, server)
            return capped.decode(), bad_status

        capped, bad_status = asyncio.run(scenario())
        assert len(capped.strip().splitlines()) == 1
        assert bad_status == 400


class TestSloEndpoint:
    def test_slo_reports_objectives_and_status_inlines_the_digest(self, docs):
        async def scenario():
            _engine, service, server = await serve_ingested(docs)
            status, _headers, body = await raw_request(
                server.port, "GET", "/slo")
            _s, _h, status_body = await raw_request(
                server.port, "GET", "/status")
            await teardown(service, server)
            return status, json.loads(body), json.loads(status_body)

        status, payload, service_status = asyncio.run(scenario())
        assert status == 200
        names = {o["name"] for o in payload["objectives"]}
        assert names == {"batch_latency", "ingest_availability",
                         "sse_delivery"}
        for objective in payload["objectives"]:
            assert set(objective["windows"]) == {"5m", "1h", "total"}
            for window in objective["windows"].values():
                assert {"good", "total", "attainment",
                        "burn_rate"} <= set(window)
        # An undisturbed replay keeps every objective green.
        assert all(entry["met"]
                   for entry in payload["summary"].values())
        assert service_status["slo"] == payload["summary"]

    def test_slo_metrics_appear_on_the_scrape(self, docs):
        async def scenario():
            _engine, service, server = await serve_ingested(docs)
            await raw_request(server.port, "GET", "/slo")
            _s, _h, body = await raw_request(server.port, "GET", "/metrics")
            await teardown(service, server)
            return body.decode()

        text = asyncio.run(scenario())
        families = parse_prometheus_families(text)
        for name in ("repro_slo_ticks_total", "repro_slo_attainment",
                     "repro_slo_burn_rate", "repro_logging_records_total",
                     "repro_serving_batch_seconds",
                     "repro_profiling_samples_total"):
            assert name in families, name
        assert 'repro_slo_attainment{objective="batch_latency"' in text


class TestShardHealth:
    def test_status_turns_503_when_a_shard_dies(self, docs):
        async def scenario():
            engine, service, server = await serve_ingested(docs, count=64)
            healthy_status, _h, _b = await raw_request(
                server.port, "GET", "/status")
            # Simulate a dead worker; the serving layer only reads the
            # health records, so the injection point is the engine API.
            engine.shard_health = lambda: [
                {"shard": 0, "alive": True, "pair_events": 10},
                {"shard": 1, "alive": False, "pair_events": 0},
            ]
            dead_status, _h, body = await raw_request(
                server.port, "GET", "/status")
            await teardown(service, server)
            return healthy_status, dead_status, json.loads(body)

        healthy_status, dead_status, body = asyncio.run(scenario())
        assert healthy_status == 200
        assert dead_status == 503
        assert body["healthy"] is False
        dead = [record for record in body["shard_health"]
                if not record["alive"]]
        assert dead and dead[0]["shard"] == 1
