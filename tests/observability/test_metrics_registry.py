"""The metrics registry: bucket edges, striping, persistence, the no-op."""

import gc
import json
import sys
import threading

import pytest

from repro.core.config import EnBlogueConfig
from repro.observability import (
    DEFAULT_BUCKETS,
    NOOP,
    Observability,
    STANDARD_FAMILIES,
    MetricsRegistry,
    parse_prometheus_families,
    render_prometheus,
)
from repro.observability.metrics import Histogram

HOUR = 3600.0


def config(**overrides):
    defaults = dict(
        window_horizon=6 * HOUR,
        evaluation_interval=HOUR,
        num_seeds=10,
        min_seed_count=1,
        min_pair_support=1,
        min_history=2,
        predictor="moving_average",
        predictor_window=3,
    )
    defaults.update(overrides)
    return EnBlogueConfig(**defaults)


class TestHistogramBuckets:
    def test_edge_observations_land_in_their_bucket(self):
        # Prometheus `le` semantics: a value equal to a bound counts in
        # that bound's bucket, strictly above it falls through.
        histogram = Histogram(buckets=[1.0, 2.0, 4.0])
        histogram.observe(1.0)   # == first bound -> le=1
        histogram.observe(2.5)   # between 2 and 4 -> le=4
        histogram.observe(5.0)   # above the last bound -> +Inf only
        cumulative, total_sum, count = histogram.merged()
        assert cumulative == [1.0, 1.0, 2.0, 3.0]
        assert total_sum == pytest.approx(8.5)
        assert count == 3

    def test_default_buckets_are_exact_powers_of_two(self):
        histogram = Histogram()
        assert histogram.buckets == DEFAULT_BUCKETS
        # The smallest bound is an exact binary float, so an observation
        # right on it deterministically lands in the first bucket.
        histogram.observe(2.0 ** -20)
        cumulative, _sum, _count = histogram.merged()
        assert cumulative[0] == 1.0

    def test_cumulative_counts_never_decrease(self):
        histogram = Histogram()
        for exponent in range(-22, 5):
            histogram.observe(2.0 ** exponent)
        cumulative, _sum, count = histogram.merged()
        assert cumulative == sorted(cumulative)
        assert cumulative[-1] == count == 27

    def test_unsorted_buckets_are_rejected(self):
        with pytest.raises(ValueError):
            Histogram(buckets=[2.0, 1.0])
        with pytest.raises(ValueError):
            Histogram(buckets=[])


class TestStriping:
    def test_concurrent_counter_increments_merge_exactly(self):
        registry = MetricsRegistry(stripes=4)
        counter = registry.counter("repro_test_events_total")
        threads_n, per_thread = 8, 5000

        def work():
            for _ in range(per_thread):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Integer adds per stripe, exact merge on read: no lost updates,
        # no float drift.
        assert counter.value == threads_n * per_thread

    def test_concurrent_histogram_observations_merge_exactly(self):
        registry = MetricsRegistry(stripes=4)
        histogram = registry.histogram("repro_test_latency_seconds")

        def work():
            for _ in range(2000):
                histogram.observe(0.5)

        threads = [threading.Thread(target=work) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert histogram.count == 12000
        assert histogram.sum == pytest.approx(6000.0)

    def test_threads_backend_counters_stay_exact(self):
        # The real thing: shard threads and the coordinator hammer the
        # same registry while a sharded engine replays a stream.
        from repro.datasets.twitter import TweetStreamGenerator
        from repro.sharding import ShardedEnBlogue

        corpus, _ = TweetStreamGenerator(
            hours=12, tweets_per_hour=30, seed=11).generate()
        documents = list(corpus)
        observability = Observability()
        engine = ShardedEnBlogue(
            config(), num_shards=2, backend="threads",
            observability=observability,
        )
        try:
            engine.process_batch(documents)
            registry = observability.registry
            assert registry.counter("repro_core_documents_total").value \
                == len(documents) == engine.documents_processed
            pair_events = registry.counter("repro_sharding_pair_events_total")
            counted = sum(child.value for _key, child in pair_events.samples())
            recorded = sum(record["pair_events"]
                           for record in engine.shard_health())
            assert counted == recorded > 0
        finally:
            engine.close()


class TestSnapshotRestore:
    def test_counters_and_histograms_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_a_total").labels(shard="0").inc(7)
        registry.counter("repro_test_a_total").labels(shard="1").inc(3)
        histogram = registry.histogram("repro_test_b_seconds")
        for value in (0.001, 0.5, 10.0):
            histogram.observe(value)

        snapshot = registry.snapshot()
        # The snapshot must survive the checkpoint manifest's JSON trip.
        snapshot = json.loads(json.dumps(snapshot))

        restored = MetricsRegistry()
        restored.restore(snapshot)
        family = restored.counter("repro_test_a_total")
        assert family.labels(shard="0").value == 7
        assert family.labels(shard="1").value == 3
        again = restored.histogram("repro_test_b_seconds")
        assert again.merged() == histogram.merged()

    def test_restored_counters_continue_monotonically(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total").inc(5)
        restored = MetricsRegistry()
        restored.restore(registry.snapshot())
        restored.counter("repro_test_total").inc(2)
        assert restored.counter("repro_test_total").value == 7


class TestNoop:
    def test_disabled_bundle_allocates_nothing_per_event(self):
        counter = NOOP.registry.counter("repro_test_total")
        histogram = NOOP.registry.histogram("repro_test_seconds")
        tracer = NOOP.tracer
        log, profiler, slo = NOOP.log, NOOP.profiler, NOOP.slo
        # Warm every code path once so lazy one-time allocations (method
        # wrappers, caches) do not count against the steady state.
        counter.inc()
        histogram.observe(0.1)
        with tracer.span("warm") as span:
            span.set(n=1)
        log.emit("warm", n=1)
        profiler.sample_once()
        slo.tick()
        gc.collect()
        gc.disable()
        try:
            before = sys.getallocatedblocks()
            for _ in range(4000):
                counter.inc()
                histogram.observe(0.1)
                with tracer.span("stage") as span:
                    span.set(n=1)
                log.emit("stage", n=1)
                profiler.sample_once()
                slo.tick()
            delta = sys.getallocatedblocks() - before
        finally:
            gc.enable()
        # Shared singletons all the way down: the loop itself may cost a
        # few interpreter-internal blocks, but nothing per event.
        assert delta <= 16

    def test_noop_reads_are_inert(self):
        assert NOOP.registry.families() == []
        assert NOOP.registry.snapshot() == {}
        assert NOOP.tracer.traces() == []
        assert NOOP.store_observer("full") is None


class TestPrometheusRendering:
    def test_standard_families_render_on_first_scrape(self):
        observability = Observability()
        families = parse_prometheus_families(
            render_prometheus(observability.registry))
        for name in STANDARD_FAMILIES:
            assert name in families
            assert families[name] == STANDARD_FAMILIES[name][0]

    def test_samples_render_and_reparse(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total", help="help text") \
            .labels(shard="0").inc(4)
        registry.gauge("repro_test_depth").set(2)
        registry.histogram("repro_test_seconds").observe(0.25)
        text = render_prometheus(registry)
        assert '# TYPE repro_test_total counter' in text
        assert 'repro_test_total{shard="0"} 4' in text
        assert 'repro_test_depth 2' in text
        assert 'repro_test_seconds_bucket{le="+Inf"} 1' in text
        assert 'repro_test_seconds_count 1' in text
        parse_prometheus_families(text)  # must not raise

    def test_parser_rejects_undeclared_samples(self):
        with pytest.raises(ValueError):
            parse_prometheus_families("repro_orphan_total 3\n")

    def test_help_and_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter(
            "repro_test_total",
            help='tricky "help"\nwith a \\ backslash',
        ).labels(path='a\\b', note='say "hi"\nbye').inc()
        text = render_prometheus(registry)
        assert ('# HELP repro_test_total '
                'tricky \\"help\\"\\nwith a \\\\ backslash') in text
        assert 'path="a\\\\b"' in text
        assert 'note="say \\"hi\\"\\nbye"' in text
        # No raw newline may survive inside a line: every record still
        # parses line-by-line.
        families = parse_prometheus_families(text)
        assert families["repro_test_total"] == "counter"

    def test_special_float_values_render_per_spec(self):
        registry = MetricsRegistry()
        registry.gauge("repro_test_inf").set(float("inf"))
        registry.gauge("repro_test_ninf").set(float("-inf"))
        registry.gauge("repro_test_nan").set(float("nan"))
        text = render_prometheus(registry)
        assert "repro_test_inf +Inf" in text
        assert "repro_test_ninf -Inf" in text
        assert "repro_test_nan NaN" in text
        # Histogram +Inf bucket bounds use the same rendering.
        registry.histogram("repro_test_seconds").observe(1.0)
        text = render_prometheus(registry)
        assert 'repro_test_seconds_bucket{le="+Inf"} 1' in text
        parse_prometheus_families(text)  # round-trips through the parser


class TestRegistryContract:
    def test_kind_conflicts_are_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total")
        with pytest.raises(ValueError):
            registry.gauge("repro_test_total")

    def test_invalid_names_and_labels_are_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("0bad")
        with pytest.raises(ValueError):
            registry.counter("repro_ok_total").labels(**{"0bad": "x"})

    def test_counters_only_go_up(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("repro_test_total").inc(-1)

    def test_live_gauge_survives_a_broken_callback(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_test_depth")
        gauge.set_function(lambda: 1 / 0)
        assert gauge.value == 0.0
        render_prometheus(registry)  # must not raise either
