"""Declarative SLOs: reductions, windowed burn rates, the /status digest."""

import pytest

from repro.observability import (
    DEFAULT_OBJECTIVES,
    NULL_SLO,
    MetricsRegistry,
    Observability,
    SloObjective,
    SloTracker,
)


class TestObjectiveSpec:
    def test_validation_rejects_malformed_objectives(self):
        with pytest.raises(ValueError):
            SloObjective(name="x", kind="throughput", target=0.9)
        with pytest.raises(ValueError):
            SloObjective(name="x", kind="latency", target=1.5,
                         metric="m", threshold_s=0.1)
        with pytest.raises(ValueError):
            SloObjective(name="x", kind="latency", target=0.9)  # no metric
        with pytest.raises(ValueError):
            SloObjective(name="x", kind="availability", target=0.9)  # no good

    def test_spec_round_trip(self):
        for objective in DEFAULT_OBJECTIVES:
            rebuilt = SloObjective.from_spec(objective.to_spec())
            assert rebuilt.to_spec() == objective.to_spec()

    def test_from_spec_ignores_unknown_keys(self):
        objective = SloObjective.from_spec({
            "name": "x", "kind": "availability", "target": 0.9,
            "good": "repro_good_total", "bad": "repro_bad_total",
            "comment": "not a field",
        })
        assert objective.name == "x"


class TestReduction:
    def test_availability_reduces_good_over_good_plus_bad(self):
        registry = MetricsRegistry()
        registry.counter("repro_good_total").inc(98)
        registry.counter("repro_bad_total").inc(2)
        objective = SloObjective(
            name="avail", kind="availability", target=0.95,
            good="repro_good_total", bad="repro_bad_total")
        assert objective.reduce(registry) == (98.0, 100.0)

    def test_availability_sums_labeled_children(self):
        registry = MetricsRegistry()
        family = registry.counter("repro_good_total")
        family.labels(shard="0").inc(3)
        family.labels(shard="1").inc(4)
        registry.counter("repro_bad_total").inc(1)
        objective = SloObjective(
            name="avail", kind="availability", target=0.95,
            good="repro_good_total", bad="repro_bad_total")
        assert objective.reduce(registry) == (7.0, 8.0)

    def test_latency_counts_observations_at_or_under_the_threshold(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("repro_lat_seconds")
        for value in (0.01, 0.02, 0.1, 0.9):
            histogram.observe(value)
        objective = SloObjective(
            name="lat", kind="latency", target=0.9,
            metric="repro_lat_seconds", threshold_s=0.25)
        good, total = objective.reduce(registry)
        assert total == 4.0
        assert good == 3.0  # the 0.9s observation is over the threshold

    def test_missing_families_reduce_to_zero(self):
        registry = MetricsRegistry()
        lat = SloObjective(name="lat", kind="latency", target=0.9,
                           metric="repro_absent_seconds", threshold_s=0.1)
        avail = SloObjective(name="a", kind="availability", target=0.9,
                             good="repro_absent_total",
                             bad="repro_also_absent_total")
        assert lat.reduce(registry) == (0.0, 0.0)
        assert avail.reduce(registry) == (0.0, 0.0)


class FakeClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now


def availability_tracker(registry, clock):
    objective = SloObjective(
        name="avail", kind="availability", target=0.99,
        good="repro_good_total", bad="repro_bad_total")
    return SloTracker(registry, objectives=[objective], clock=clock)


class TestTracker:
    def test_windows_report_deltas_not_lifetime_totals(self):
        registry = MetricsRegistry()
        clock = FakeClock()
        tracker = availability_tracker(registry, clock)
        good = registry.counter("repro_good_total")
        bad = registry.counter("repro_bad_total")
        # A bad start, ticked well outside the 5m window...
        good.inc(50)
        bad.inc(50)
        tracker.tick()
        clock.now += 3000.0
        # ...then a clean recent stretch.
        good.inc(100)
        tracker.tick()
        clock.now += 10.0
        report = tracker.report()[0]
        windows = report["windows"]
        assert windows["5m"]["good"] == 100.0
        assert windows["5m"]["total"] == 100.0
        assert windows["5m"]["attainment"] == 1.0
        # The 1h and lifetime windows still see the bad start.
        assert windows["1h"]["total"] == 200.0
        assert windows["total"]["attainment"] == pytest.approx(150 / 200)
        assert report["met"] is False

    def test_burn_rate_scales_the_miss_by_the_error_budget(self):
        registry = MetricsRegistry()
        clock = FakeClock()
        tracker = availability_tracker(registry, clock)
        registry.counter("repro_good_total").inc(990)
        registry.counter("repro_bad_total").inc(10)
        tracker.tick()
        windows = tracker.report()[0]["windows"]
        # 99% attainment against a 99% target burns budget at exactly
        # the sustainable rate.
        assert windows["total"]["attainment"] == pytest.approx(0.99)
        assert windows["total"]["burn_rate"] == pytest.approx(1.0)

    def test_no_events_means_perfect_attainment(self):
        tracker = availability_tracker(MetricsRegistry(), FakeClock())
        report = tracker.report()[0]
        assert report["windows"]["total"]["attainment"] == 1.0
        assert report["windows"]["total"]["burn_rate"] == 0.0
        assert report["met"] is True

    def test_report_exports_gauges_and_tick_counts(self):
        registry = MetricsRegistry()
        clock = FakeClock()
        tracker = availability_tracker(registry, clock)
        tracker.tick()
        tracker.tick()
        assert registry.counter("repro_slo_ticks_total").value == 2
        tracker.report()
        attainment = registry.gauge("repro_slo_attainment")
        labels = {dict(key)["window"] for key, _ in attainment.samples()}
        assert labels == {"5m", "1h", "total"}

    def test_summary_digest_shape(self):
        registry = MetricsRegistry()
        tracker = availability_tracker(registry, FakeClock())
        registry.counter("repro_good_total").inc(5)
        tracker.tick()
        digest = tracker.summary()
        assert set(digest) == {"avail"}
        assert set(digest["avail"]) \
            == {"target", "attainment", "worst_burn_rate", "met"}

    def test_default_objectives_work_against_the_bundle_registry(self):
        observability = Observability()
        observability.registry.counter(
            "repro_serving_batches_processed_total").inc(10)
        observability.registry.histogram(
            "repro_serving_batch_seconds").observe(0.01)
        observability.slo.tick()
        digest = observability.slo.summary()
        assert set(digest) \
            == {"batch_latency", "ingest_availability", "sse_delivery"}
        assert all(entry["met"] for entry in digest.values())

    def test_objective_specs_accepted_as_plain_dicts(self):
        tracker = SloTracker(MetricsRegistry(), objectives=[{
            "name": "x", "kind": "availability", "target": 0.9,
            "good": "repro_good_total", "bad": "repro_bad_total",
        }])
        assert tracker.objectives[0].name == "x"


class TestContinuity:
    def test_slo_counters_survive_a_snapshot_restore(self):
        first = Observability()
        first.slo.tick()
        first.slo.tick()
        resumed = Observability()
        resumed.restore(first.snapshot())
        assert resumed.registry.counter("repro_slo_ticks_total").value == 2
        resumed.slo.tick()
        assert resumed.registry.counter("repro_slo_ticks_total").value == 3


class TestNull:
    def test_null_tracker_is_inert(self):
        NULL_SLO.tick()
        assert NULL_SLO.report() == []
        assert NULL_SLO.summary() == {}
