"""The dependency-free sampling profiler and its collapsed rendering."""

import threading
import time

from repro.observability import (
    NULL_PROFILER,
    MetricsRegistry,
    Observability,
    SamplingProfiler,
    render_collapsed,
)


def busy_wait(barrier, stop):
    barrier.wait()
    while not stop.is_set():
        sum(range(100))


class TestSampling:
    def test_sample_once_captures_other_threads_root_first(self):
        profiler = SamplingProfiler()
        barrier = threading.Barrier(2)
        stop = threading.Event()
        worker = threading.Thread(
            target=busy_wait, args=(barrier, stop), daemon=True)
        worker.start()
        barrier.wait()
        try:
            captured = profiler.sample_once()
        finally:
            stop.set()
            worker.join()
        assert captured >= 1
        stacks = list(profiler.counts())
        assert any("busy_wait" in stack for stack in stacks)
        target = next(stack for stack in stacks if "busy_wait" in stack)
        frames = target.split(";")
        # Root-first: the thread bootstrap leads and busy_wait sits below
        # it — the "collapsed" orientation flamegraph.pl expects.
        bootstrap = next(i for i, f in enumerate(frames) if "_bootstrap" in f)
        busy = next(i for i, f in enumerate(frames) if "busy_wait" in f)
        assert bootstrap < busy
        assert all("(" in frame and ":" in frame for frame in frames)

    def test_sampler_excludes_its_own_thread(self):
        profiler = SamplingProfiler()
        profiler.sample_once()
        assert all("sample_once" not in stack for stack in profiler.counts())

    def test_background_sampling_accumulates_and_stops(self):
        profiler = SamplingProfiler(interval=0.001)
        profiler.start()
        assert profiler.running
        deadline = time.monotonic() + 2.0
        while profiler.samples_total == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        profiler.stop()
        assert not profiler.running
        assert profiler.samples_total > 0
        settled = profiler.samples_total
        time.sleep(0.02)
        assert profiler.samples_total == settled  # really stopped

    def test_ensure_running_reports_whether_it_started(self):
        profiler = SamplingProfiler(interval=0.001)
        assert profiler.ensure_running() is True
        assert profiler.ensure_running() is False  # already running
        profiler.stop()

    def test_counts_since_diffs_against_a_baseline(self):
        profiler = SamplingProfiler()
        barrier = threading.Barrier(2)
        stop = threading.Event()
        worker = threading.Thread(
            target=busy_wait, args=(barrier, stop), daemon=True)
        worker.start()
        barrier.wait()
        try:
            profiler.sample_once()
            baseline = profiler.counts()
            captured = profiler.sample_once() + profiler.sample_once()
            fresh = profiler.counts_since(baseline)
        finally:
            stop.set()
            worker.join()
        assert sum(fresh.values()) == captured
        # Every differential count is positive and never exceeds the
        # absolute count.
        totals = profiler.counts()
        for stack, count in fresh.items():
            assert 0 < count <= totals[stack]

    def test_samples_feed_the_registry_counter(self):
        registry = MetricsRegistry()
        profiler = SamplingProfiler(registry=registry)
        barrier = threading.Barrier(2)
        stop = threading.Event()
        worker = threading.Thread(
            target=busy_wait, args=(barrier, stop), daemon=True)
        worker.start()
        barrier.wait()
        try:
            captured = profiler.sample_once()
        finally:
            stop.set()
            worker.join()
        metric = registry.counter("repro_profiling_samples_total")
        assert metric.value == captured == profiler.samples_total


class TestRendering:
    def test_render_collapsed_sorts_by_count_then_stack(self):
        text = render_collapsed({"a;b": 2, "a;c": 5, "z": 2})
        assert text.splitlines() == ["a;c 5", "a;b 2", "z 2"]

    def test_render_collapsed_empty(self):
        assert render_collapsed({}) == ""


class TestContinuity:
    def test_restore_samples_is_a_max_merge(self):
        profiler = SamplingProfiler()
        profiler.restore_samples(40)
        assert profiler.samples_total == 40
        profiler.restore_samples(7)
        assert profiler.samples_total == 40

    def test_bundle_snapshot_round_trips_sample_totals(self):
        first = Observability()
        first.profiler.sample_once()
        before = first.profiler.samples_total
        resumed = Observability()
        resumed.restore(first.snapshot())
        assert resumed.profiler.samples_total == before


class TestNull:
    def test_null_profiler_is_inert(self):
        assert NULL_PROFILER.sample_once() == 0
        assert NULL_PROFILER.counts() == {}
        assert NULL_PROFILER.counts_since({}) == {}
        assert NULL_PROFILER.ensure_running() is False
        NULL_PROFILER.stop()
        assert NULL_PROFILER.samples_total == 0
