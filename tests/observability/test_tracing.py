"""Stage tracing: span trees, determinism across resume, stage metrics."""

import json

from repro.core.config import EnBlogueConfig
from repro.core.engine import EnBlogue
from repro.observability import (
    Observability,
    STAGE_METRIC,
    MetricsRegistry,
    StageTracer,
    render_trace_ndjson,
)
from repro.persistence.resume import load_engine

HOUR = 3600.0


def config(**overrides):
    defaults = dict(
        window_horizon=6 * HOUR,
        evaluation_interval=HOUR,
        num_seeds=10,
        min_seed_count=1,
        min_pair_support=1,
        min_history=2,
        predictor="moving_average",
        predictor_window=3,
    )
    defaults.update(overrides)
    return EnBlogueConfig(**defaults)


def make_documents(count, tags=("alpha", "beta")):
    from repro.datasets.documents import Document
    return [
        Document(timestamp=float(i) * HOUR / 4, doc_id=f"doc-{i}",
                 tags=frozenset(tags), text=" ".join(tags))
        for i in range(count)
    ]


class FrozenClock:
    """A deterministic clock advancing a fixed step per reading."""

    def __init__(self, step=0.001):
        self.now = 0.0
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


def batch_trace_ids(tracer):
    return [trace["trace_id"] for trace in tracer.traces()
            if trace["trace_id"].startswith("batch-")]


class TestSpans:
    def test_spans_nest_into_trees(self):
        tracer = StageTracer(clock=FrozenClock())
        with tracer.trace(42) as root:
            root.set(documents=3)
            with tracer.span("ingest") as child:
                child.set(documents=3)
            with tracer.span("evaluate"):
                with tracer.span("rank"):
                    pass
        traces = tracer.traces()
        assert len(traces) == 1
        assert traces[0]["trace_id"] == "batch-000000000042"
        (root_node,) = traces[0]["spans"]
        assert root_node["name"] == "batch"
        assert root_node["attrs"] == {"documents": 3}
        names = [node["name"] for node in root_node["children"]]
        assert names == ["ingest", "evaluate"]
        evaluate = root_node["children"][1]
        assert evaluate["children"][0]["name"] == "rank"

    def test_durations_come_from_the_injected_clock(self):
        clock = FrozenClock(step=0.5)
        tracer = StageTracer(clock=clock)
        with tracer.trace(0):
            pass
        (trace,) = tracer.traces()
        # One reading at open, one at close: exactly one step apart.
        assert trace["spans"][0]["duration_us"] == 0.5 * 1e6

    def test_orphan_spans_open_auxiliary_traces(self):
        tracer = StageTracer()
        with tracer.span("checkpoint_full"):
            pass
        with tracer.span("sse_fanout"):
            pass
        ids = [trace["trace_id"] for trace in tracer.traces()]
        assert ids == ["aux-checkpoint_full-00000001",
                       "aux-sse_fanout-00000002"]

    def test_ring_buffer_drops_oldest(self):
        tracer = StageTracer(capacity=4)
        for sequence in range(10):
            with tracer.trace(sequence):
                pass
        ids = batch_trace_ids(tracer)
        assert ids == [f"batch-{n:012d}" for n in (6, 7, 8, 9)]

    def test_traces_last_caps_the_export(self):
        tracer = StageTracer()
        for sequence in range(6):
            with tracer.trace(sequence):
                pass
        assert len(tracer.traces(last=2)) == 2
        assert tracer.traces(last=0) == []

    def test_span_exit_feeds_the_stage_histogram(self):
        registry = MetricsRegistry()
        tracer = StageTracer(clock=FrozenClock(step=0.25), registry=registry)
        with tracer.span("merge"):
            pass
        with tracer.span("merge"):
            pass
        child = registry.histogram(STAGE_METRIC).labels(stage="merge")
        assert child.count == 2
        assert child.sum == 2 * 0.25

    def test_ndjson_export_is_one_object_per_line(self):
        tracer = StageTracer()
        for sequence in (0, 7):
            with tracer.trace(sequence):
                with tracer.span("ingest"):
                    pass
        lines = render_trace_ndjson(tracer).strip().splitlines()
        assert len(lines) == 2
        for line in lines:
            payload = json.loads(line)
            assert set(payload) == {"trace_id", "spans"}


class TestDeterminismAcrossResume:
    def test_resumed_run_reproduces_the_uninterrupted_trace_ids(self, tmp_path):
        documents = make_documents(40)
        chunks = [documents[i:i + 10] for i in range(0, 40, 10)]

        # The uninterrupted run: four batches, four trace ids.
        full = EnBlogue(config(), observability=Observability())
        for chunk in chunks:
            full.process_batch(chunk)
        full_ids = batch_trace_ids(full.observability.tracer)
        assert len(full_ids) == 4

        # The same stream, checkpointed after two batches and resumed
        # into a fresh process (fresh tracer included).
        first = EnBlogue(config(), observability=Observability())
        for chunk in chunks[:2]:
            first.process_batch(chunk)
        first.save_checkpoint(tmp_path)
        resumed, _manifest = load_engine(
            tmp_path, observability=Observability())
        for chunk in chunks[2:]:
            resumed.process_batch(chunk)

        resumed_ids = batch_trace_ids(resumed.observability.tracer)
        # Trace ids derive from checkpointed engine state, never wall
        # clocks: the resumed batches get exactly the ids the
        # uninterrupted run gave them.
        assert resumed_ids == full_ids[2:]
        assert batch_trace_ids(first.observability.tracer) == full_ids[:2]

    def test_resumed_rankings_stay_bit_identical_when_instrumented(
            self, tmp_path):
        from repro.portal.serialization import ranking_to_dict

        documents = make_documents(40)
        plain = EnBlogue(config())
        plain.process_batch(documents)

        instrumented = EnBlogue(config(), observability=Observability())
        instrumented.process_batch(documents[:20])
        instrumented.save_checkpoint(tmp_path)
        resumed, _ = load_engine(tmp_path, observability=Observability())
        resumed.process_batch(documents[20:])

        assert [ranking_to_dict(r) for r in resumed.ranking_history()] \
            == [ranking_to_dict(r) for r in plain.ranking_history()[
                len(plain.ranking_history())
                - len(resumed.ranking_history()):]]
