"""The structured NDJSON event log: ring, trace correlation, sinks."""

import json

from repro.observability import (
    NULL_EVENT_LOG,
    EventLog,
    MetricsRegistry,
    Observability,
)
from repro.observability.tracing import StageTracer


class TestEmit:
    def test_records_carry_monotonic_sequence_and_fields(self):
        log = EventLog(now=lambda: 123.0)
        first = log.emit("batch", documents=3)
        second = log.emit("checkpoint", level="warning", mode="delta")
        assert first["seq"] == 1 and second["seq"] == 2
        assert first["ts"] == 123.0
        assert first["event"] == "batch" and first["documents"] == 3
        assert second["level"] == "warning" and second["mode"] == "delta"
        assert log.sequence == 2

    def test_ring_is_bounded_and_keeps_the_newest(self):
        log = EventLog(capacity=4)
        for i in range(10):
            log.emit("tick", i=i)
        records = log.records()
        assert len(records) == 4
        assert [r["i"] for r in records] == [6, 7, 8, 9]
        # The sequence keeps counting even though old records fell out.
        assert log.sequence == 10

    def test_records_last_caps_from_the_tail(self):
        log = EventLog()
        for i in range(6):
            log.emit("tick", i=i)
        assert [r["i"] for r in log.records(last=2)] == [4, 5]
        assert log.records(last=0) == []

    def test_emit_inside_a_trace_carries_trace_and_span_ids(self):
        tracer = StageTracer(clock=lambda: 0.0)
        log = EventLog(tracer=tracer)
        outside = log.emit("aux")
        with tracer.trace(7):
            with tracer.span("ingest"):
                inside = log.emit("batch")
        assert "trace_id" not in outside
        assert inside["trace_id"] == "batch-000000000007"
        assert "span_id" in inside

    def test_emit_feeds_the_level_counter(self):
        registry = MetricsRegistry()
        log = EventLog(registry=registry)
        log.emit("a")
        log.emit("b")
        log.emit("c", level="warning")
        family = registry.get("repro_logging_records_total")
        values = {dict(key)["level"]: child.value
                  for key, child in family.samples()}
        assert values == {"info": 2.0, "warning": 1.0}


class TestMerge:
    def test_merge_restamps_the_envelope_and_adds_fields(self):
        source = EventLog()
        foreign = source.emit("shard_restore", live_pairs=12)
        target = EventLog()
        target.emit("warmup")
        merged = target.merge(foreign, shard=3)
        assert merged["seq"] == 2  # target's numbering, not the source's
        assert merged["event"] == "shard_restore"
        assert merged["live_pairs"] == 12 and merged["shard"] == 3

    def test_merge_inside_a_trace_adopts_the_local_trace_id(self):
        tracer = StageTracer(clock=lambda: 0.0)
        target = EventLog(tracer=tracer)
        foreign = {"seq": 99, "ts": 1.0, "level": "info",
                   "event": "shard_restore", "trace_id": "batch-000000000099"}
        with tracer.span("recovery"):
            merged = target.merge(foreign, shard=1)
        assert merged["trace_id"].startswith("aux-recovery-")


class TestRendering:
    def test_render_ndjson_is_one_json_object_per_line(self):
        log = EventLog()
        log.emit("a", n=1)
        log.emit("b", n=2)
        lines = log.render_ndjson().strip().splitlines()
        parsed = [json.loads(line) for line in lines]
        assert [p["event"] for p in parsed] == ["a", "b"]
        assert log.render_ndjson(last=1).strip().splitlines()[0] == lines[1]

    def test_file_sink_appends_ndjson(self, tmp_path):
        path = tmp_path / "events.ndjson"
        log = EventLog(path=str(path))
        log.emit("first", n=1)
        log.emit("second", n=2)
        log.close()
        lines = path.read_text("utf-8").strip().splitlines()
        assert [json.loads(line)["event"] for line in lines] \
            == ["first", "second"]

    def test_file_sink_failure_never_raises(self, tmp_path):
        log = EventLog(path=str(tmp_path / "events.ndjson"))
        log._sink.close()  # simulate the disk going away mid-run
        log.emit("after-close")  # must not raise
        assert log.records()[-1]["event"] == "after-close"
        log.close()


class TestContinuity:
    def test_restore_sequence_continues_monotonically(self):
        log = EventLog()
        log.restore_sequence(41)
        assert log.emit("resumed")["seq"] == 42
        # Restoring backwards never rewinds the counter.
        log.restore_sequence(3)
        assert log.emit("later")["seq"] == 43

    def test_bundle_snapshot_round_trips_the_sequence(self):
        first = Observability()
        first.log.emit("a")
        first.log.emit("b")
        resumed = Observability()
        resumed.restore(first.snapshot())
        assert resumed.log.emit("c")["seq"] == 3


class TestNull:
    def test_null_log_is_inert(self):
        assert NULL_EVENT_LOG.emit("anything", n=1) is None
        assert NULL_EVENT_LOG.merge({"event": "x"}) is None
        assert NULL_EVENT_LOG.records() == []
        assert NULL_EVENT_LOG.render_ndjson() == ""
        NULL_EVENT_LOG.restore_sequence(5)
        NULL_EVENT_LOG.close()
