"""Tests for the YAGO-style ontology."""

import pytest

from repro.entity.knowledge_base import default_knowledge_base
from repro.entity.ontology import Ontology, ontology_from_knowledge_base


class TestTypeHierarchy:
    def test_add_and_query_subtypes(self):
        onto = Ontology()
        onto.add_type("person")
        onto.add_type("politician", parent="person")
        assert onto.is_subtype("politician", "person")
        assert not onto.is_subtype("person", "politician")

    def test_type_is_subtype_of_itself(self):
        onto = Ontology()
        onto.add_type("person")
        assert onto.is_subtype("person", "person")

    def test_transitive_supertypes(self):
        onto = Ontology()
        onto.add_type("agent")
        onto.add_type("person", parent="agent")
        onto.add_type("politician", parent="person")
        assert onto.supertypes("politician") == {"person", "agent"}

    def test_cycle_rejected(self):
        onto = Ontology()
        onto.add_type("a")
        onto.add_type("b", parent="a")
        with pytest.raises(ValueError):
            onto.add_type("a", parent="b")

    def test_empty_type_name_rejected(self):
        with pytest.raises(ValueError):
            Ontology().add_type("")


class TestEntityAssignments:
    def test_assign_and_query_types(self):
        onto = Ontology()
        onto.add_type("person")
        onto.add_type("politician", parent="person")
        onto.assign("Barack Obama", ["politician"])
        assert onto.types_of("Barack Obama") == {"politician", "person"}

    def test_entities_of_type_includes_subtypes(self):
        onto = Ontology()
        onto.add_type("person")
        onto.add_type("athlete", parent="person")
        onto.assign("Roger Federer", ["athlete"])
        onto.assign("Some Person", ["person"])
        assert set(onto.entities_of_type("person")) == {"Roger Federer", "Some Person"}

    def test_matches_with_allowed_types(self):
        onto = Ontology()
        onto.add_type("person")
        onto.add_type("place")
        onto.assign("Athens", ["place"])
        assert onto.matches("Athens", ["place"])
        assert not onto.matches("Athens", ["person"])

    def test_matches_with_empty_filter_accepts_everything(self):
        onto = Ontology()
        assert onto.matches("anything", [])

    def test_unknown_entity_never_matches_a_filter(self):
        onto = Ontology()
        onto.add_type("person")
        assert not onto.matches("nobody", ["person"])


class TestOntologyFromKnowledgeBase:
    def test_builds_subclass_structure_from_type_tuples(self):
        onto = ontology_from_knowledge_base(default_knowledge_base())
        assert onto.is_subtype("politician", "person")
        assert onto.matches("Barack Obama", ["person"])
        assert onto.matches("Athens", ["place"])
        assert not onto.matches("Athens", ["person"])
