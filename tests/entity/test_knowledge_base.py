"""Tests for the Wikipedia-style knowledge base."""

import pytest

from repro.entity.knowledge_base import (
    KnowledgeBase,
    KnowledgeBaseEntry,
    default_knowledge_base,
    normalize_title,
)


class TestNormalizeTitle:
    def test_lowercases_and_collapses_spaces(self):
        assert normalize_title("  Barack   Obama ") == "barack obama"


class TestKnowledgeBaseEntry:
    def test_rejects_empty_title(self):
        with pytest.raises(ValueError):
            KnowledgeBaseEntry(title="   ")


class TestKnowledgeBase:
    def test_resolve_canonical_title(self):
        kb = KnowledgeBase()
        kb.add_entity("Barack Obama", aliases=["obama"], types=["person"])
        entry = kb.resolve("barack obama")
        assert entry is not None
        assert entry.title == "Barack Obama"

    def test_resolve_follows_redirects(self):
        kb = KnowledgeBase()
        kb.add_entity("Barack Obama", aliases=["obama", "president obama"])
        assert kb.canonical_title("Obama") == "Barack Obama"
        assert kb.canonical_title("PRESIDENT OBAMA") == "Barack Obama"

    def test_unknown_phrase_resolves_to_none(self):
        kb = KnowledgeBase()
        assert kb.resolve("nobody") is None
        assert "nobody" not in kb

    def test_contains_uses_redirects(self):
        kb = KnowledgeBase()
        kb.add_entity("Hurricane Katrina", aliases=["katrina"])
        assert "katrina" in kb

    def test_duplicate_canonical_title_overwrites_cleanly(self):
        kb = KnowledgeBase()
        kb.add_entity("Athens", types=["city"])
        # Adding the same title again replaces the entry (last write wins).
        kb.add_entity("athens", types=["place"])
        assert kb.resolve("Athens").types == ("place",)

    def test_alias_colliding_with_canonical_title_is_rejected(self):
        kb = KnowledgeBase()
        kb.add_entity("Athens")
        with pytest.raises(ValueError):
            kb.add_entity("Greece", aliases=["Athens"])

    def test_title_already_used_as_redirect_is_rejected(self):
        kb = KnowledgeBase()
        kb.add_entity("Barack Obama", aliases=["obama"])
        with pytest.raises(ValueError):
            kb.add_entity("Obama")

    def test_phrases_cover_titles_and_aliases(self):
        kb = KnowledgeBase()
        kb.add_entity("Barack Obama", aliases=["obama"])
        assert set(kb.phrases()) == {"barack obama", "obama"}

    def test_len_counts_canonical_entities(self):
        kb = KnowledgeBase()
        kb.add_entity("A")
        kb.add_entity("B", aliases=["bee"])
        assert len(kb) == 2


class TestDefaultKnowledgeBase:
    def test_contains_demo_entities(self):
        kb = default_knowledge_base()
        assert kb.canonical_title("sigmod") == "SIGMOD"
        assert kb.canonical_title("athens") == "Athens"
        assert kb.canonical_title("katrina") == "Hurricane Katrina"
        assert kb.canonical_title("eyjafjallajokull") == "Eyjafjallajokull"

    def test_entities_have_types(self):
        kb = default_knowledge_base()
        assert "person" in kb.resolve("Barack Obama").types
