"""Tests for tokenisation and n-gram enumeration."""

import pytest

from repro.entity.tokenizer import is_stopword, ngrams, tokenize


class TestTokenize:
    def test_splits_on_whitespace_and_punctuation(self):
        assert tokenize("Hello, world!") == ["hello", "world"]

    def test_preserves_case_when_requested(self):
        assert tokenize("Hello World", lowercase=False) == ["Hello", "World"]

    def test_keeps_hyphens_and_apostrophes_inside_words(self):
        assert tokenize("New York-based O'Brien") == ["new", "york-based", "o'brien"]

    def test_numbers_are_tokens(self):
        assert tokenize("election 2008 results") == ["election", "2008", "results"]

    def test_empty_text(self):
        assert tokenize("") == []


class TestNgrams:
    def test_enumerates_up_to_max_length(self):
        phrases = [phrase for _, _, phrase in ngrams(["a", "b", "c"], 2)]
        assert phrases == ["a b", "a", "b c", "b", "c"]

    def test_longest_first_per_start_position(self):
        result = list(ngrams(["x", "y"], 4))
        assert result[0] == (0, 2, "x y")
        assert result[1] == (0, 1, "x")

    def test_max_length_must_be_positive(self):
        with pytest.raises(ValueError):
            list(ngrams(["a"], 0))

    def test_empty_tokens(self):
        assert list(ngrams([], 4)) == []


class TestStopwords:
    def test_common_function_words_are_stopwords(self):
        assert is_stopword("the")
        assert is_stopword("The")
        assert is_stopword("and")

    def test_content_words_are_not(self):
        assert not is_stopword("volcano")
        assert not is_stopword("athens")
