"""Tests for the sliding-window entity tagger."""

import pytest

from repro.entity.knowledge_base import KnowledgeBase
from repro.entity.ontology import ontology_from_knowledge_base
from repro.entity.tagger import EntityTagger, EntityTaggingOperator
from repro.streams.item import StreamItem
from repro.streams.operators import CollectorSink


def small_kb():
    kb = KnowledgeBase()
    kb.add_entity("Barack Obama", aliases=["obama"], types=["person", "politician"])
    kb.add_entity("Hurricane Katrina", aliases=["katrina"], types=["event", "hurricane"])
    kb.add_entity("New Orleans", types=["place", "city"])
    kb.add_entity("Athens", types=["place", "city"])
    kb.add_entity("SIGMOD", types=["organization", "conference"])
    return kb


class TestEntityTagger:
    def test_finds_multi_word_entities(self):
        tagger = EntityTagger(knowledge_base=small_kb())
        found = tagger.tag("Barack Obama visited New Orleans after the storm")
        assert found == ["Barack Obama", "New Orleans"]

    def test_resolves_aliases_to_canonical_names(self):
        tagger = EntityTagger(knowledge_base=small_kb())
        assert tagger.tag("obama spoke about katrina") == [
            "Barack Obama", "Hurricane Katrina",
        ]

    def test_longest_match_wins(self):
        tagger = EntityTagger(knowledge_base=small_kb())
        found = tagger.tag("hurricane katrina hit the coast")
        # "Hurricane Katrina" should match as one phrase, not also "katrina".
        assert found == ["Hurricane Katrina"]

    def test_deduplicates_repeated_entities(self):
        tagger = EntityTagger(knowledge_base=small_kb())
        assert tagger.tag("Athens, Athens and again Athens") == ["Athens"]

    def test_type_filter_restricts_matches(self):
        kb = small_kb()
        tagger = EntityTagger(
            knowledge_base=kb,
            ontology=ontology_from_knowledge_base(kb),
            allowed_types=["place"],
        )
        found = tagger.tag("Barack Obama arrived in Athens for SIGMOD")
        assert found == ["Athens"]

    def test_no_matches_in_plain_text(self):
        tagger = EntityTagger(knowledge_base=small_kb())
        assert tagger.tag("nothing interesting happened today") == []

    def test_empty_text(self):
        tagger = EntityTagger(knowledge_base=small_kb())
        assert tagger.tag("") == []

    def test_rejects_non_positive_phrase_length(self):
        with pytest.raises(ValueError):
            EntityTagger(knowledge_base=small_kb(), max_phrase_length=0)

    def test_phrase_longer_than_window_is_not_matched(self):
        kb = KnowledgeBase()
        kb.add_entity("one two three four five")
        tagger = EntityTagger(knowledge_base=kb, max_phrase_length=4, use_prefilter=False)
        assert tagger.tag("one two three four five") == []

    def test_default_knowledge_base_is_used_when_none_given(self):
        tagger = EntityTagger()
        assert "Athens" in tagger.tag("the conference moved to Athens")

    def test_prefilter_can_be_disabled(self):
        tagger = EntityTagger(knowledge_base=small_kb(), use_prefilter=False)
        assert tagger.tag("obama in athens") == ["Barack Obama", "Athens"]


class TestEntityTaggingOperator:
    def test_enriches_items_with_entities(self):
        operator = EntityTaggingOperator(EntityTagger(knowledge_base=small_kb()))
        sink = CollectorSink()
        operator.connect(sink)
        operator.push(StreamItem(
            timestamp=1.0, doc_id="d1", tags={"news"},
            text="Barack Obama lands in Athens",
        ))
        enriched = sink.items[0]
        assert enriched.entities == frozenset({"Barack Obama", "Athens"})
        assert operator.documents_tagged == 1
        assert operator.entities_added == 2

    def test_items_without_text_pass_through(self):
        operator = EntityTaggingOperator(EntityTagger(knowledge_base=small_kb()))
        sink = CollectorSink()
        operator.connect(sink)
        item = StreamItem(timestamp=1.0, doc_id="d1", tags={"news"})
        operator.push(item)
        assert sink.items[0] is item

    def test_items_with_no_matches_pass_through(self):
        operator = EntityTaggingOperator(EntityTagger(knowledge_base=small_kb()))
        sink = CollectorSink()
        operator.connect(sink)
        item = StreamItem(timestamp=1.0, doc_id="d1", tags={"news"}, text="plain words")
        operator.push(item)
        assert sink.items[0] is item
        assert sink.items[0].entities == frozenset()
