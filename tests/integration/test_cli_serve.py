"""The ``serve`` command end to end: a real server process over HTTP.

Mirrors the CI serve-smoke leg: start ``python -m repro.cli serve`` with a
2-shard backend and a delta checkpoint cadence, POST a synthetic batch,
read a ranking frame off the SSE stream, confirm the journal landed, shut
down cleanly, and resume a second server from the checkpoint.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import time
import urllib.request

import pytest

from repro.cli import build_parser
from repro.datasets.twitter import TweetStreamGenerator

HOUR = 3600.0


class TestServeParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.port == 8000
        assert args.queue_capacity == 8

    def test_delta_mode_requires_cadence(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="delta"):
            main(["serve", "--checkpoint-dir", "/tmp/x",
                  "--checkpoint-mode", "delta"])

    def test_cadence_requires_directory(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="checkpoint-dir"):
            main(["serve", "--checkpoint-every", "2"])

    def test_resume_rejects_config_overrides(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="--top-k"):
            main(["serve", "--resume", "/tmp/nowhere", "--top-k", "5"])


def wait_for_port(port, process, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise AssertionError(
                f"server exited early: {process.stderr.read()}"
            )
        try:
            with socket.create_connection(("127.0.0.1", port), timeout=0.5):
                return
        except OSError:
            time.sleep(0.1)
    raise AssertionError(f"server on port {port} never came up")


def free_port():
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def post_json(port, path, payload):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read())


def get_json(port, path):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=10
    ) as response:
        return response.status, json.loads(response.read())


def open_sse(port, timeout=20.0):
    """Connect to the SSE stream (do this *before* posting documents)."""
    stream = socket.create_connection(("127.0.0.1", port), timeout=timeout)
    stream.sendall(b"GET /rankings/stream HTTP/1.1\r\nHost: x\r\n\r\n")
    stream.settimeout(timeout)
    return stream


def read_one_sse_frame(stream):
    blob = b""
    while True:
        chunk = stream.recv(4096)
        if not chunk:
            break
        blob += chunk
        if b"\ndata: " in blob and b"\n\n" in blob.split(b"\ndata: ", 1)[1]:
            break
    for line in blob.split(b"\n"):
        if line.startswith(b"data: "):
            return json.loads(line[len(b"data: "):])
    raise AssertionError(f"no SSE data frame in: {blob!r}")


def spawn_serve(extra, port):
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--host", "127.0.0.1", "--port", str(port)] + extra,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        cwd=os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))),
        env=env,
    )
    wait_for_port(port, process)
    return process


def shutdown(process):
    process.send_signal(signal.SIGTERM)
    try:
        process.wait(timeout=30)
    except subprocess.TimeoutExpired:
        process.kill()
        raise


class TestServeEndToEnd:
    def test_serve_checkpoint_and_resume(self, tmp_path):
        corpus, _ = TweetStreamGenerator(
            hours=10, tweets_per_hour=20, seed=5).generate()
        docs = [
            {"timestamp": d.timestamp, "tags": sorted(d.tags), "text": d.text}
            for d in corpus
        ]
        ckpt = tmp_path / "ckpt"
        port = free_port()
        process = spawn_serve(
            ["--shards", "2", "--backend", "serial",
             "--checkpoint-dir", str(ckpt), "--checkpoint-every", "2",
             "--checkpoint-mode", "delta"], port,
        )
        try:
            with open_sse(port) as stream:
                status, body = post_json(port, "/ingest", docs[:120])
                assert status == 202 and body["accepted"] == 120
                frame = read_one_sse_frame(stream)
            assert "topics" in frame and "timestamp" in frame
            _, state = get_json(port, "/status")
            assert state["documents_processed"] >= 0
        finally:
            shutdown(process)
        assert (ckpt / "MANIFEST.json").exists()
        assert list(ckpt.glob("*.delta")), "no delta journal segment landed"

        resume_port = free_port()
        resumed = spawn_serve(["--resume", str(ckpt)], resume_port)
        try:
            continuation = docs[120:]
            with open_sse(resume_port) as stream:
                status, body = post_json(resume_port, "/ingest", continuation)
                assert status == 202
                assert body["accepted"] == len(continuation)
                frame = read_one_sse_frame(stream)
            assert "topics" in frame
            _, ranking = get_json(resume_port, "/rankings")
            assert ranking["ranking"] is not None
        finally:
            shutdown(resumed)
