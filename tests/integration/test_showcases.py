"""Integration tests mirroring the paper's three demonstration show cases."""

import pytest

from repro.baselines.popularity import PopularityBaseline
from repro.baselines.twitter_monitor import TwitterMonitorBaseline
from repro.core.config import EnBlogueConfig
from repro.core.engine import EnBlogue
from repro.core.personalization import UserProfile
from repro.core.types import TagPair
from repro.datasets.nyt import DAY, NytArchiveGenerator, default_historic_events, nyt_vocabulary
from repro.datasets.twitter import TweetStreamGenerator
from repro.evaluation.ground_truth import GroundTruthMatcher
from repro.evaluation.harness import run_detector, run_experiment
from repro.evaluation.metrics import RankingComparison

HOUR = 3600.0


def archive_config(**overrides):
    defaults = dict(
        window_horizon=7 * DAY, evaluation_interval=DAY,
        num_seeds=20, min_seed_count=2, min_pair_support=2, min_history=3,
        predictor="moving_average", predictor_window=5,
        decay_half_life=2 * DAY, name="nyt",
    )
    defaults.update(overrides)
    return EnBlogueConfig(**defaults)


def live_config(**overrides):
    defaults = dict(
        window_horizon=24 * HOUR, evaluation_interval=HOUR,
        num_seeds=20, min_seed_count=1, min_pair_support=1, min_history=2,
        predictor="ewma", decay_half_life=2 * DAY, name="live",
    )
    defaults.update(overrides)
    return EnBlogueConfig(**defaults)


@pytest.fixture(scope="module")
def nyt_archive():
    generator = NytArchiveGenerator(years=0.5, articles_per_day=16, seed=19)
    return generator.generate()


@pytest.fixture(scope="module")
def nyt_run(nyt_archive):
    corpus, schedule = nyt_archive
    result = run_experiment(EnBlogue(archive_config()), corpus, schedule,
                            name="enblogue", k=10)
    return result, schedule


class TestShowCase1HistoricEvents(object):
    """Revisiting historic events on the (synthetic) NYT archive."""

    def test_majority_of_scripted_events_detected(self, nyt_run):
        result, _ = nyt_run
        assert result.recall >= 0.6

    def test_detection_latency_within_days(self, nyt_run):
        result, _ = nyt_run
        assert result.mean_latency is not None
        assert result.mean_latency <= 7 * DAY

    def test_category_rankings_contain_the_category_event(self, nyt_run):
        # Users browse by category: restricting the ranking to tags of one
        # category should surface that category's event.
        result, schedule = nyt_run
        vocabulary = nyt_vocabulary()
        hurricane_tags = set(vocabulary.tags("hurricanes"))
        hurricane_events = schedule.by_category("hurricanes")
        assert hurricane_events
        hits = 0
        for event in hurricane_events:
            pair = TagPair.from_tuple(event.pair)
            for ranking in result.run.rankings:
                position = ranking.position_of(pair)
                if position is not None and set(pair.as_tuple()) <= hurricane_tags:
                    hits += 1
                    break
        assert hits >= 1

    def test_time_range_changes_the_ranking(self, nyt_archive):
        """Show case 1 lets users pick their own time ranges."""
        corpus, schedule = nyt_archive
        start, end = corpus.time_range()
        midpoint = (start + end) / 2
        first_half = EnBlogue(archive_config(name="first-half"))
        first_half.process_many(corpus.between(start, midpoint))
        second_half = EnBlogue(archive_config(name="second-half"))
        second_half.process_many(corpus.between(midpoint + 1, end))
        first_ranking = first_half.evaluate_now()
        second_ranking = second_half.evaluate_now()
        comparison = RankingComparison.compare(first_ranking, second_ranking, k=10)
        assert comparison.overlap < 1.0


class TestShowCase2LiveData:
    """Live tweet/RSS monitoring with the audience-injected SIGMOD topic."""

    @pytest.fixture(scope="class")
    def live_run(self):
        corpus, schedule = TweetStreamGenerator(hours=72, tweets_per_hour=40,
                                                seed=29).generate()
        engine = EnBlogue(live_config())
        run = run_detector(engine, corpus, name="enblogue-live")
        return run, schedule

    def test_sigmod_athens_topic_reaches_top_positions(self, live_run):
        run, schedule = live_run
        event = next(e for e in schedule if e.name == "sigmod-athens")
        pair = TagPair.from_tuple(event.pair)
        positions = [
            ranking.position_of(pair)
            for ranking in run.rankings
            if ranking.timestamp >= event.start and ranking.position_of(pair) is not None
        ]
        assert positions
        assert min(positions) < 5

    def test_detection_happens_within_hours_of_onset(self, live_run):
        run, schedule = live_run
        matcher = GroundTruthMatcher(schedule, k=10)
        outcomes = {o.event.name: o for o in matcher.outcomes(run.rankings)}
        sigmod = outcomes["sigmod-athens"]
        assert sigmod.detected
        assert sigmod.latency <= 12 * HOUR

    def test_ranking_evolves_over_time(self, live_run):
        run, _ = live_run
        early = run.rankings[len(run.rankings) // 4]
        late = run.rankings[-1]
        comparison = RankingComparison.compare(early, late, k=10)
        assert comparison.overlap < 1.0


class TestShowCase3Personalization:
    """Different users see differently ordered (or different) topics."""

    @pytest.fixture(scope="class")
    def personalized_views(self):
        corpus, schedule = TweetStreamGenerator(hours=60, tweets_per_hour=30,
                                                seed=31).generate()
        engine = EnBlogue(live_config(top_k=15))
        engine.register_user(UserProfile(
            user_id="database-researcher", keywords=("sigmod", "databases", "athens"),
            boost=4.0))
        engine.register_user(UserProfile(
            user_id="traveller", keywords=("travel", "iceland", "europe"), boost=4.0))
        engine.register_user(UserProfile(
            user_id="sports-only", keywords=("sports", "football", "tennis"),
            boost=2.0, filter_only=True))
        engine.process_many(corpus)
        global_ranking = engine.current_ranking()
        views = {
            user: engine.ranking_for_user(user)
            for user in ("database-researcher", "traveller", "sports-only")
        }
        return global_ranking, views

    def test_profiles_reorder_or_change_the_list(self, personalized_views):
        global_ranking, views = personalized_views
        researcher = views["database-researcher"]
        traveller = views["traveller"]
        assert researcher.pairs() != traveller.pairs()

    def test_filter_only_profile_sees_only_matching_topics(self, personalized_views):
        _, views = personalized_views
        sports = views["sports-only"]
        allowed = ("sports", "football", "tennis")
        for topic in sports:
            assert any(
                any(keyword in tag for keyword in allowed)
                for tag in topic.pair.as_tuple()
            )

    def test_interest_boost_lifts_relevant_topics(self, personalized_views):
        global_ranking, views = personalized_views
        traveller = views["traveller"]
        if traveller.pairs():
            top_pair = traveller[0].pair
            global_position = global_ranking.position_of(top_pair)
            personal_position = traveller.position_of(top_pair)
            if global_position is not None:
                assert personal_position <= global_position


class TestBaselineContrast:
    """The related-work contrast: shifts vs. bursts vs. popularity."""

    def test_enblogue_finds_non_bursty_shifts_the_baselines_miss(self):
        """Figure 1's point: a correlation shift with constant per-tag
        frequencies is invisible to burst detection and to popularity
        ranking, but enBlogue detects it."""
        from repro.datasets.synthetic import correlation_shift_stream

        corpus, schedule = correlation_shift_stream(num_events=3, num_steps=60,
                                                    shift_start=36, seed=41)
        enblogue = run_experiment(
            EnBlogue(live_config(min_pair_support=2, min_history=3,
                                 predictor="moving_average", predictor_window=5)),
            corpus, schedule, name="enblogue", k=10)
        monitor = run_experiment(
            TwitterMonitorBaseline(window_horizon=24 * HOUR, evaluation_interval=HOUR,
                                   top_k=10),
            corpus, schedule, name="twitter-monitor", k=10)
        popularity = run_experiment(
            PopularityBaseline(window_horizon=24 * HOUR, evaluation_interval=HOUR,
                               top_k=10),
            corpus, schedule, name="popularity", k=10)
        assert enblogue.recall >= 2 / 3
        assert monitor.recall < enblogue.recall
        assert popularity.recall < enblogue.recall

    def test_all_detectors_find_genuinely_bursty_events(self, nyt_archive):
        """On the NYT archive the scripted events are bursty as well as
        correlated, so the burst baseline also finds them — the advantage of
        enBlogue is specific to non-bursty shifts, not a blanket win."""
        corpus, schedule = nyt_archive
        enblogue = run_experiment(EnBlogue(archive_config()), corpus, schedule,
                                  name="enblogue", k=10)
        monitor = run_experiment(
            TwitterMonitorBaseline(window_horizon=7 * DAY, evaluation_interval=DAY,
                                   top_k=10),
            corpus, schedule, name="twitter-monitor", k=10)
        assert enblogue.recall >= 0.75
        assert monitor.recall >= 0.5
