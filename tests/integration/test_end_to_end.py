"""End-to-end integration: stream engine -> enBlogue -> portal."""

import pytest

from repro.core.config import EnBlogueConfig
from repro.core.engine import EnBlogue
from repro.core.personalization import UserProfile
from repro.core.types import TagPair
from repro.datasets.synthetic import figure1_stream
from repro.datasets.twitter import TweetStreamGenerator
from repro.entity.tagger import EntityTaggingOperator
from repro.portal.server import Portal
from repro.storage.document_store import DocumentStore
from repro.storage.inverted_index import InvertedTagIndex
from repro.streams.operators import FunctionSink, StatisticsOperator, TagNormalizerOperator
from repro.streams.plan import PlanExecutor, QueryPlan
from repro.streams.sources import DocumentStreamSource

HOUR = 3600.0


def engine_config(**overrides):
    defaults = dict(
        window_horizon=12 * HOUR, evaluation_interval=HOUR,
        num_seeds=15, min_seed_count=1, min_pair_support=1, min_history=2,
        predictor_window=3,
    )
    defaults.update(overrides)
    return EnBlogueConfig(**defaults)


class TestFullPipelineThroughStreamEngine:
    def test_operator_dag_feeds_two_engines_with_shared_prefix(self):
        """Two parameter settings evaluated in parallel over one replay."""
        corpus, schedule = figure1_stream(num_steps=45, shift_start=25)
        source = DocumentStreamSource(corpus, source_name="figure1")
        executor = PlanExecutor()
        normalizer = executor.shared_operator("normalize", TagNormalizerOperator)
        statistics = executor.shared_operator("stats", StatisticsOperator)
        tagging = executor.shared_operator("entities", EntityTaggingOperator)

        engine_jaccard = EnBlogue(engine_config(name="jaccard"))
        engine_cosine = EnBlogue(engine_config(name="cosine",
                                               correlation_measure="cosine"))
        executor.register(QueryPlan(
            "jaccard", source, [normalizer, statistics, tagging],
            engine_jaccard.as_sink()))
        executor.register(QueryPlan(
            "cosine", source, [normalizer, statistics, tagging],
            engine_cosine.as_sink()))

        emitted = executor.run()
        assert emitted == len(corpus)
        # The shared prefix saw each document exactly once.
        assert statistics.documents == len(corpus)
        # Both engines consumed the whole stream and produced rankings.
        assert engine_jaccard.documents_processed == len(corpus)
        assert engine_cosine.documents_processed == len(corpus)
        assert engine_jaccard.ranking_history()
        assert engine_cosine.ranking_history()

        # Both parameter settings surface the injected shift prominently.
        pair = TagPair.from_tuple(schedule.events()[0].pair)
        for engine in (engine_jaccard, engine_cosine):
            final = engine.evaluate_now()
            positions = [
                r.position_of(pair) for r in engine.ranking_history()
                if r.position_of(pair) is not None
            ]
            assert positions and min(positions) < 5

    def test_storage_supports_drill_down_on_detected_topic(self):
        """The inverted index answers 'show me the documents behind this topic'."""
        corpus, schedule = figure1_stream(num_steps=40, shift_start=20)
        engine = EnBlogue(engine_config())
        store = DocumentStore()
        index = InvertedTagIndex()

        source = DocumentStreamSource(corpus, source_name="figure1")
        def archive(item):
            store.put(item)
            index.index(item)
            engine.process(item)
        source.connect(FunctionSink(archive))
        source.run()

        pair = schedule.events()[0].pair
        supporting = index.query(list(pair))
        assert supporting
        assert all(set(pair) <= set(item.tags) for item in supporting)
        assert store.get(supporting[0].doc_id) is not None


class TestPortalEndToEnd:
    def test_live_monitoring_with_personalized_sessions(self):
        corpus, schedule = TweetStreamGenerator(hours=60, tweets_per_hour=25,
                                                seed=13).generate()
        engine = EnBlogue(engine_config(name="live"))
        portal = Portal(engine)
        portal.register_user(UserProfile(user_id="attendee",
                                         keywords=("sigmod", "athens"), boost=4.0))
        anonymous = portal.connect("anon-browser")
        attendee = portal.connect("attendee-browser", user_id="attendee")

        for document in corpus:
            engine.process(document)

        # Both sessions were pushed every ranking without polling.
        assert len(anonymous.messages()) == len(engine.ranking_history())
        assert len(attendee.messages()) > len(anonymous.messages())

        # The injected SIGMOD/Athens topic reaches the attendee's top list.
        personalized = engine.ranking_for_user("attendee", top_k=5)
        sigmod_pair = TagPair("sigmod", "athens")
        assert personalized.contains_pair(sigmod_pair)

        status = portal.status()
        assert status["documents_processed"] == len(corpus)
        assert status["rankings_produced"] > 0
