"""Failure injection and degraded-mode behaviour across components."""

import pytest

from repro.core.config import EnBlogueConfig
from repro.core.engine import EnBlogue
from repro.core.types import TagPair
from repro.datasets.synthetic import figure1_stream
from repro.portal.server import Portal
from repro.streams.item import StreamItem
from repro.streams.operators import FilterOperator, TagNormalizerOperator
from repro.streams.plan import PlanExecutor, QueryPlan
from repro.streams.sources import DocumentStreamSource, IterableSource
from repro.streams.synopses import ThrottleOperator

HOUR = 3600.0


def engine_config(**overrides):
    defaults = dict(
        window_horizon=12 * HOUR, evaluation_interval=HOUR,
        num_seeds=15, min_seed_count=1, min_pair_support=1, min_history=2,
        predictor_window=3,
    )
    defaults.update(overrides)
    return EnBlogueConfig(**defaults)


class TestMalformedInput:
    def test_malformed_stream_items_are_rejected_at_construction(self):
        with pytest.raises(ValueError):
            StreamItem(timestamp=-5.0, doc_id="bad")
        with pytest.raises(ValueError):
            StreamItem(timestamp=1.0, doc_id="")

    def test_out_of_order_source_aborts_the_replay(self):
        items = [
            StreamItem(timestamp=10.0, doc_id="a", tags={"x"}),
            StreamItem(timestamp=5.0, doc_id="b", tags={"y"}),
        ]
        source = IterableSource(items)
        engine = EnBlogue(engine_config())
        source.connect(engine.as_sink())
        with pytest.raises(ValueError):
            source.run()
        # The engine saw only the documents that preceded the fault.
        assert engine.documents_processed == 1

    def test_filter_operator_can_quarantine_bad_documents(self):
        # A guard operator drops tag-less documents before they reach the
        # engine, which is how a production plan would handle dirty feeds.
        items = [
            StreamItem(timestamp=1.0, doc_id="good-1", tags={"a", "b"}),
            StreamItem(timestamp=2.0, doc_id="empty", tags=frozenset()),
            StreamItem(timestamp=3.0, doc_id="good-2", tags={"a", "b"}),
        ]
        engine = EnBlogue(engine_config())
        executor = PlanExecutor()
        guard = FilterOperator(lambda item: bool(item.tags), name="guard")
        executor.register(QueryPlan("guarded", IterableSource(items), [guard],
                                    engine.as_sink()))
        executor.run()
        assert engine.documents_processed == 2
        assert guard.dropped == 1


class TestDegradedOperation:
    def test_detection_survives_load_shedding(self):
        """With 1-in-2 load shedding the injected shift is still detected."""
        corpus, schedule = figure1_stream(num_steps=45, shift_start=25)
        engine = EnBlogue(engine_config())
        executor = PlanExecutor()
        executor.register(QueryPlan(
            "shedded", DocumentStreamSource(corpus, source_name="figure1"),
            [TagNormalizerOperator(), ThrottleOperator(keep_one_in=2)],
            engine.as_sink()))
        executor.run()
        engine.evaluate_now()
        pair = TagPair.from_tuple(schedule.events()[0].pair)
        positions = [
            r.position_of(pair) for r in engine.ranking_history()
            if r.position_of(pair) is not None
        ]
        assert engine.documents_processed == pytest.approx(len(corpus) / 2, abs=1)
        assert positions and min(positions) < 5

    def test_portal_survives_sessions_coming_and_going(self):
        corpus, _ = figure1_stream(num_steps=20, shift_start=10)
        engine = EnBlogue(engine_config())
        portal = Portal(engine)
        stable = portal.connect("stable")
        flaky = portal.connect("flaky")
        midpoint = len(corpus) // 2
        for index, document in enumerate(corpus):
            engine.process(document)
            if index == midpoint:
                portal.disconnect("flaky")
                portal.connect("latecomer")
        assert len(stable.messages()) == len(engine.ranking_history())
        assert len(flaky.messages()) < len(stable.messages())
        latecomer = portal.session("latecomer")
        assert 0 < len(latecomer.messages()) < len(stable.messages())

    def test_listener_registered_mid_stream_only_sees_later_rankings(self):
        corpus, _ = figure1_stream(num_steps=12, shift_start=6)
        engine = EnBlogue(engine_config())
        documents = list(corpus)
        first_half, second_half = documents[:len(documents) // 2], documents[len(documents) // 2:]
        engine.process_many(first_half)
        seen_before = len(engine.ranking_history())
        received = []
        engine.add_ranking_listener(received.append)
        engine.process_many(second_half)
        assert len(received) == len(engine.ranking_history()) - seen_before
