"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_replay_defaults(self):
        args = build_parser().parse_args(["replay"])
        assert args.dataset == "tweets"
        assert args.command == "replay"

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["replay", "--dataset", "facebook"])

    def test_non_positive_shards_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["replay", "--shards", "0"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["replay", "--shards", "-2"])


class TestReplayCommand:
    def test_replay_tweets_prints_summary_and_ranking(self, capsys):
        exit_code = main(["replay", "--dataset", "tweets", "--hours", "24",
                          "--top-k", "5", "--seed", "7"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "replay of 'tweets'" in output
        assert "recall" in output
        assert "ranking at t=" in output

    def test_replay_with_export_writes_json(self, tmp_path, capsys):
        target = tmp_path / "rankings.json"
        exit_code = main(["replay", "--dataset", "tweets", "--hours", "18",
                          "--seed", "7", "--export", str(target)])
        assert exit_code == 0
        payload = json.loads(target.read_text())
        assert isinstance(payload, list)
        assert payload, "at least one ranking should have been exported"
        assert "topics" in payload[0]

    def test_replay_with_overrides(self, capsys):
        exit_code = main(["replay", "--dataset", "tweets", "--hours", "18",
                          "--measure", "cosine", "--predictor", "ewma",
                          "--seeds", "10", "--seed", "7"])
        assert exit_code == 0

    def test_sharded_replay_matches_single_engine_output(self, capsys):
        main(["replay", "--dataset", "tweets", "--hours", "18", "--seed", "7"])
        single_ranking = capsys.readouterr().out.split("ranking at t=")[1]
        exit_code = main(["replay", "--dataset", "tweets", "--hours", "18",
                          "--seed", "7", "--shards", "4", "--backend", "serial"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "enblogue[4xserial]" in output
        assert output.split("ranking at t=")[1] == single_ranking

    def test_sharded_replay_process_backend(self, capsys):
        exit_code = main(["replay", "--dataset", "tweets", "--hours", "12",
                          "--seed", "7", "--shards", "2",
                          "--backend", "process"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "enblogue[2xprocess]" in output
        assert "ranking at t=" in output

    def test_sharded_replay_threads_backend_matches_single(self, capsys):
        main(["replay", "--dataset", "tweets", "--hours", "18", "--seed", "7"])
        single_ranking = capsys.readouterr().out.split("ranking at t=")[1]
        exit_code = main(["replay", "--dataset", "tweets", "--hours", "18",
                          "--seed", "7", "--shards", "4",
                          "--backend", "threads"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "enblogue[4xthreads]" in output
        assert output.split("ranking at t=")[1] == single_ranking

    def test_replay_verbose_reports_runtime(self, capsys):
        exit_code = main(["replay", "--dataset", "tweets", "--hours", "12",
                          "--seed", "7", "--shards", "2",
                          "--backend", "threads", "--verbose"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "runtime: engine=sharded backend=threads shards=2" in output
        assert "evaluation_path=" in output

    def test_replay_quiet_omits_runtime_line(self, capsys):
        exit_code = main(["replay", "--dataset", "tweets", "--hours", "12",
                          "--seed", "7"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "runtime:" not in output


class TestCompareCommand:
    def test_compare_on_shift_workload(self, capsys):
        exit_code = main(["compare", "--dataset", "shifts", "--hours", "48",
                          "--seed", "11"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "enblogue" in output
        assert "twitter-monitor" in output
        assert "popularity" in output


class TestExploreCommand:
    def test_explore_tweets_range(self, capsys):
        exit_code = main(["explore", "--dataset", "tweets", "--hours", "30",
                          "--seed", "13", "--start-day", "10", "--end-day", "28",
                          "--top-k", "5"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "indexed" in output
        assert "ranking for" in output
