"""Tests for the APE-style push dispatcher."""

import pytest

from repro.portal.push import (
    Channel,
    ChannelClosedError,
    PushDispatcher,
    PushMessage,
)


class TestPushMessage:
    def test_validation(self):
        with pytest.raises(ValueError):
            PushMessage(channel="", payload=None, sequence=0)
        with pytest.raises(ValueError):
            PushMessage(channel="c", payload=None, sequence=-1)


class TestChannel:
    def test_publish_delivers_to_all_subscribers(self):
        channel = Channel("news")
        received_a, received_b = [], []
        channel.subscribe("a", received_a.append)
        channel.subscribe("b", received_b.append)
        delivered = channel.publish(PushMessage("news", "payload", 0))
        assert delivered == 2
        assert len(received_a) == 1
        assert len(received_b) == 1

    def test_unsubscribe_stops_delivery(self):
        channel = Channel("news")
        received = []
        channel.subscribe("a", received.append)
        channel.unsubscribe("a")
        channel.publish(PushMessage("news", "payload", 0))
        assert received == []

    def test_history_is_bounded(self):
        channel = Channel("news", history_limit=3)
        for i in range(10):
            channel.publish(PushMessage("news", i, i))
        history = channel.history()
        assert len(history) == 3
        assert [m.payload for m in history] == [7, 8, 9]

    def test_validation(self):
        with pytest.raises(ValueError):
            Channel("")
        with pytest.raises(ValueError):
            Channel("x", history_limit=-1)

    def test_subscriber_ids_sorted(self):
        channel = Channel("news")
        channel.subscribe("b", lambda m: None)
        channel.subscribe("a", lambda m: None)
        assert channel.subscriber_ids == ["a", "b"]


class TestPushDispatcher:
    def test_publish_creates_channel_and_sequences_messages(self):
        dispatcher = PushDispatcher()
        first = dispatcher.publish("topics", "one")
        second = dispatcher.publish("topics", "two")
        assert first.sequence < second.sequence
        assert dispatcher.channels() == ["topics"]
        assert dispatcher.messages_published == 2

    def test_subscribers_receive_pushes_without_polling(self):
        dispatcher = PushDispatcher()
        received = []
        dispatcher.subscribe("topics", "client-1", received.append)
        dispatcher.publish("topics", {"rank": 1})
        assert len(received) == 1
        assert received[0].payload == {"rank": 1}

    def test_channels_are_isolated(self):
        dispatcher = PushDispatcher()
        received = []
        dispatcher.subscribe("alpha", "client", received.append)
        dispatcher.publish("beta", "not for you")
        assert received == []

    def test_deliveries_counted(self):
        dispatcher = PushDispatcher()
        dispatcher.subscribe("c", "one", lambda m: None)
        dispatcher.subscribe("c", "two", lambda m: None)
        dispatcher.publish("c", "x")
        assert dispatcher.deliveries == 2

    def test_unsubscribe_from_unknown_channel_is_noop(self):
        PushDispatcher().unsubscribe("nope", "client")

    def test_channel_accessor_reuses_instance(self):
        dispatcher = PushDispatcher()
        assert dispatcher.channel("x") is dispatcher.channel("x")


class TestUseAfterClose:
    """Publish/subscribe after close raise — mirroring the shard backends.

    A closed push path silently swallowing ranking updates would be the
    portal-side twin of a closed backend returning empty rankings; both
    fail loudly instead.
    """

    def test_publish_on_closed_channel_raises(self):
        channel = Channel("news")
        channel.close()
        with pytest.raises(ChannelClosedError, match="'news'"):
            channel.publish(PushMessage(channel="news", payload=1, sequence=0))

    def test_subscribe_on_closed_channel_raises(self):
        channel = Channel("news")
        channel.close()
        with pytest.raises(ChannelClosedError, match="subscribe"):
            channel.subscribe("late", lambda message: None)

    def test_close_drops_subscribers_but_keeps_history(self):
        channel = Channel("news")
        channel.subscribe("a", lambda message: None)
        message = PushMessage(channel="news", payload="x", sequence=0)
        channel.publish(message)
        channel.close()
        assert channel.closed
        assert channel.subscriber_ids == []
        assert channel.history() == [message]

    def test_channel_close_is_idempotent(self):
        channel = Channel("news")
        channel.close()
        channel.close()

    def test_unsubscribe_after_close_is_a_noop(self):
        channel = Channel("news")
        channel.subscribe("a", lambda message: None)
        channel.close()
        channel.unsubscribe("a")

    def test_publish_on_closed_dispatcher_raises(self):
        dispatcher = PushDispatcher()
        dispatcher.publish("topics", "one")
        dispatcher.close()
        with pytest.raises(ChannelClosedError):
            dispatcher.publish("topics", "two")
        assert dispatcher.messages_published == 1

    def test_dispatcher_close_closes_every_channel(self):
        dispatcher = PushDispatcher()
        channel = dispatcher.channel("topics")
        dispatcher.close()
        assert dispatcher.closed
        assert channel.closed
        with pytest.raises(ChannelClosedError):
            dispatcher.channel("fresh")
        with pytest.raises(ChannelClosedError):
            dispatcher.subscribe("topics", "late", lambda message: None)

    def test_dispatcher_close_is_idempotent(self):
        dispatcher = PushDispatcher()
        dispatcher.channel("topics")
        dispatcher.close()
        dispatcher.close()

    def test_unsubscribe_after_dispatcher_close_is_a_noop(self):
        dispatcher = PushDispatcher()
        dispatcher.subscribe("topics", "client", lambda message: None)
        dispatcher.close()
        dispatcher.unsubscribe("topics", "client")
