"""Tests for ranking JSON serialization."""

import json

import pytest

from repro.core.types import EmergentTopic, Ranking, TagPair
from repro.portal.serialization import (
    ranking_from_dict,
    ranking_from_json,
    ranking_to_dict,
    ranking_to_json,
    rankings_from_json,
    rankings_to_json,
    topic_from_dict,
    topic_to_dict,
)


def sample_ranking():
    return Ranking(
        timestamp=3600.0,
        label="demo",
        topics=[
            EmergentTopic(pair=TagPair("volcano", "air traffic"), score=0.8,
                          correlation=0.6, predicted_correlation=0.2,
                          prediction_error=0.4, seed_tag="volcano", timestamp=3600.0),
            EmergentTopic(pair=TagPair("athens", "sigmod"), score=0.5, timestamp=3600.0),
        ],
    )


class TestTopicCodec:
    def test_round_trip(self):
        topic = sample_ranking()[0]
        assert topic_from_dict(topic_to_dict(topic)) == topic

    def test_missing_optional_fields_default(self):
        restored = topic_from_dict({"tags": ["a", "b"], "score": 0.3})
        assert restored.pair == TagPair("a", "b")
        assert restored.correlation == 0.0

    def test_invalid_tags_rejected(self):
        with pytest.raises(ValueError):
            topic_from_dict({"tags": ["only-one"], "score": 0.3})


class TestRankingCodec:
    def test_dict_round_trip(self):
        ranking = sample_ranking()
        restored = ranking_from_dict(ranking_to_dict(ranking))
        assert restored.timestamp == ranking.timestamp
        assert restored.label == ranking.label
        assert restored.pairs() == ranking.pairs()
        assert restored.scores() == ranking.scores()

    def test_json_round_trip(self):
        ranking = sample_ranking()
        text = ranking_to_json(ranking, indent=2)
        assert json.loads(text)["label"] == "demo"
        restored = ranking_from_json(text)
        assert restored.pairs() == ranking.pairs()

    def test_json_is_sorted_and_stable(self):
        first = ranking_to_json(sample_ranking())
        second = ranking_to_json(sample_ranking())
        assert first == second

    def test_ranking_order_preserved_through_round_trip(self):
        ranking = sample_ranking()
        restored = ranking_from_json(ranking_to_json(ranking))
        assert [t.score for t in restored] == [t.score for t in ranking]

    def test_rankings_list_round_trip(self):
        rankings = [sample_ranking(), Ranking(timestamp=7200.0)]
        restored = rankings_from_json(rankings_to_json(rankings))
        assert len(restored) == 2
        assert restored[0].pairs() == rankings[0].pairs()
        assert len(restored[1]) == 0
