"""Tests for the portal façade (engine + push dispatcher + sessions)."""

import pytest

from repro.core.config import EnBlogueConfig
from repro.core.engine import EnBlogue
from repro.core.personalization import UserProfile
from repro.core.types import Ranking
from repro.datasets.documents import Document
from repro.portal.server import GLOBAL_CHANNEL, Portal, user_channel

HOUR = 3600.0


def engine():
    return EnBlogue(EnBlogueConfig(
        window_horizon=6 * HOUR, evaluation_interval=HOUR,
        num_seeds=10, min_seed_count=1, min_pair_support=1, min_history=2,
    ))


def doc(t, tags):
    return Document(timestamp=float(t), doc_id=f"d{t}", tags=frozenset(tags))


class TestSessions:
    def test_connect_and_disconnect(self):
        portal = Portal(engine())
        portal.connect("session-1")
        assert portal.sessions() == ["session-1"]
        portal.disconnect("session-1")
        assert portal.sessions() == []
        portal.disconnect("session-1")  # idempotent

    def test_duplicate_session_rejected(self):
        portal = Portal(engine())
        portal.connect("session-1")
        with pytest.raises(ValueError):
            portal.connect("session-1")

    def test_unknown_session_lookup_raises(self):
        with pytest.raises(KeyError):
            Portal(engine()).session("nope")


class TestPushFlow:
    def test_rankings_are_pushed_to_connected_sessions(self):
        enblogue = engine()
        portal = Portal(enblogue)
        session = portal.connect("browser-1")
        enblogue.process(doc(0, ["a", "b"]))
        enblogue.process(doc(2 * HOUR, ["a", "b"]))
        assert len(session.messages(GLOBAL_CHANNEL)) == len(enblogue.ranking_history())
        assert isinstance(portal.current_view("browser-1"), Ranking)

    def test_disconnected_sessions_receive_nothing_further(self):
        enblogue = engine()
        portal = Portal(enblogue)
        session = portal.connect("browser-1")
        enblogue.process(doc(0, ["a", "b"]))
        enblogue.process(doc(2 * HOUR, ["a", "b"]))
        seen = len(session.messages())
        portal.disconnect("browser-1")
        enblogue.process(doc(5 * HOUR, ["a", "b"]))
        assert len(session.messages()) == seen

    def test_personalized_channel_for_registered_user(self):
        enblogue = engine()
        portal = Portal(enblogue)
        portal.register_user(UserProfile(user_id="alice", keywords=("a",)))
        session = portal.connect("browser-alice", user_id="alice")
        enblogue.process(doc(0, ["a", "b"]))
        enblogue.process(doc(2 * HOUR, ["a", "b"]))
        personal = session.messages(user_channel("alice"))
        assert personal
        assert personal[-1].payload.label == "user:alice"
        # The same session also sees the global channel.
        assert session.messages(GLOBAL_CHANNEL)

    def test_current_view_is_none_before_any_ranking(self):
        portal = Portal(engine())
        portal.connect("browser-1")
        assert portal.current_view("browser-1") is None

    def test_status_counters(self):
        enblogue = engine()
        portal = Portal(enblogue)
        portal.connect("browser-1")
        enblogue.process(doc(0, ["a", "b"]))
        enblogue.process(doc(2 * HOUR, ["a", "b"]))
        status = portal.status()
        assert status["sessions"] == 1
        assert status["documents_processed"] == 2
        assert status["rankings_produced"] >= 1
        assert status["messages_published"] >= status["rankings_produced"]
