"""Tests for client sessions."""

import pytest

from repro.portal.push import PushMessage
from repro.portal.sessions import ClientSession


def message(payload, channel="topics", sequence=0):
    return PushMessage(channel=channel, payload=payload, sequence=sequence)


class TestClientSession:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClientSession("")
        with pytest.raises(ValueError):
            ClientSession("s", inbox_limit=0)

    def test_receives_and_stores_messages(self):
        session = ClientSession("browser-1")
        session.deliver(message("a"))
        session.deliver(message("b", sequence=1))
        assert len(session) == 2
        assert session.latest_payload() == "b"

    def test_messages_filtered_by_channel(self):
        session = ClientSession("browser-1")
        session.deliver(message("global", channel="all"))
        session.deliver(message("mine", channel="user/alice", sequence=1))
        assert [m.payload for m in session.messages("user/alice")] == ["mine"]
        assert session.latest_payload("all") == "global"

    def test_latest_payload_when_empty_is_none(self):
        assert ClientSession("s").latest_payload() is None

    def test_disconnect_stops_delivery(self):
        session = ClientSession("browser-1")
        session.disconnect()
        session.deliver(message("late"))
        assert len(session) == 0
        assert not session.connected

    def test_inbox_is_bounded(self):
        session = ClientSession("browser-1", inbox_limit=5)
        for i in range(20):
            session.deliver(message(i, sequence=i))
        assert len(session) == 5
        assert session.latest_payload() == 19
