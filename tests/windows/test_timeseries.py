"""Tests for the TimeSeries container."""

import pytest

from repro.windows.timeseries import TimeSeries


class TestAppendAndAccess:
    def test_starts_empty(self):
        series = TimeSeries()
        assert len(series) == 0
        assert not series

    def test_append_and_iterate(self):
        series = TimeSeries()
        series.append(1.0, 10.0)
        series.append(2.0, 20.0)
        assert list(series) == [(1.0, 10.0), (2.0, 20.0)]

    def test_construct_from_points(self):
        series = TimeSeries([(1.0, 1.0), (2.0, 4.0)])
        assert series.values == (1.0, 4.0)

    def test_rejects_out_of_order_append(self):
        series = TimeSeries([(2.0, 1.0)])
        with pytest.raises(ValueError):
            series.append(1.0, 5.0)

    def test_equal_timestamps_are_allowed(self):
        series = TimeSeries()
        series.append(1.0, 1.0)
        series.append(1.0, 2.0)
        assert len(series) == 2

    def test_getitem_and_last(self):
        series = TimeSeries([(1.0, 5.0), (3.0, 7.0)])
        assert series[0] == (1.0, 5.0)
        assert series.last() == (3.0, 7.0)

    def test_last_on_empty_series_raises(self):
        with pytest.raises(IndexError):
            TimeSeries().last()


class TestLookups:
    def test_value_at_uses_step_interpolation(self):
        series = TimeSeries([(0.0, 1.0), (10.0, 2.0)])
        assert series.value_at(5.0) == 1.0
        assert series.value_at(10.0) == 2.0
        assert series.value_at(100.0) == 2.0

    def test_value_at_before_first_point_raises(self):
        series = TimeSeries([(5.0, 1.0)])
        with pytest.raises(KeyError):
            series.value_at(1.0)

    def test_value_at_on_empty_series_raises(self):
        with pytest.raises(IndexError):
            TimeSeries().value_at(0.0)

    def test_between_selects_inclusive_range(self):
        series = TimeSeries([(1.0, 1.0), (2.0, 2.0), (3.0, 3.0), (4.0, 4.0)])
        sub = series.between(2.0, 3.0)
        assert list(sub) == [(2.0, 2.0), (3.0, 3.0)]

    def test_between_with_reversed_bounds_raises(self):
        with pytest.raises(ValueError):
            TimeSeries().between(2.0, 1.0)

    def test_tail(self):
        series = TimeSeries([(float(i), float(i)) for i in range(5)])
        assert series.tail(2) == [3.0, 4.0]
        assert series.tail(0) == []
        assert series.tail(10) == [0.0, 1.0, 2.0, 3.0, 4.0]


class TestTransforms:
    def test_resample_onto_regular_grid(self):
        series = TimeSeries([(0.0, 1.0), (10.0, 3.0)])
        resampled = series.resample(0.0, 20.0, 10.0)
        assert list(resampled) == [(0.0, 1.0), (10.0, 3.0), (20.0, 3.0)]

    def test_resample_before_data_yields_zero(self):
        series = TimeSeries([(10.0, 3.0)])
        resampled = series.resample(0.0, 10.0, 5.0)
        assert resampled.values == (0.0, 0.0, 3.0)

    def test_resample_rejects_bad_arguments(self):
        series = TimeSeries([(0.0, 1.0)])
        with pytest.raises(ValueError):
            series.resample(0.0, 10.0, 0.0)
        with pytest.raises(ValueError):
            series.resample(10.0, 0.0, 1.0)

    def test_diff_produces_first_differences(self):
        series = TimeSeries([(0.0, 1.0), (1.0, 4.0), (2.0, 2.0)])
        assert list(series.diff()) == [(1.0, 3.0), (2.0, -2.0)]

    def test_statistics(self):
        series = TimeSeries([(0.0, 1.0), (1.0, 3.0), (2.0, 5.0)])
        assert series.mean() == pytest.approx(3.0)
        assert series.max() == 5.0
        assert series.min() == 1.0
        assert series.std() == pytest.approx(2.0)

    def test_statistics_of_empty_series_are_zero(self):
        series = TimeSeries()
        assert series.mean() == 0.0
        assert series.std() == 0.0
        assert series.max() == 0.0
        assert series.min() == 0.0


class TestRingBufferMode:
    def test_maxlen_bounds_length(self):
        series = TimeSeries(maxlen=3)
        for t in range(10):
            series.append(float(t), float(t) * 2)
        assert len(series) == 3
        assert list(series) == [(7.0, 14.0), (8.0, 16.0), (9.0, 18.0)]

    def test_unbounded_without_maxlen(self):
        series = TimeSeries()
        for t in range(10):
            series.append(float(t), 0.0)
        assert len(series) == 10
        assert series.maxlen is None

    def test_maxlen_respected_from_constructor_points(self):
        series = TimeSeries([(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)], maxlen=2)
        assert list(series) == [(1.0, 2.0), (2.0, 3.0)]
        assert series.maxlen == 2

    def test_order_check_still_applies_when_bounded(self):
        series = TimeSeries(maxlen=2)
        series.append(5.0, 1.0)
        with pytest.raises(ValueError):
            series.append(4.0, 1.0)

    def test_invalid_maxlen_rejected(self):
        with pytest.raises(ValueError):
            TimeSeries(maxlen=0)

    def test_previous_values(self):
        series = TimeSeries([(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)])
        assert series.previous_values() == [1.0, 2.0]
        assert TimeSeries().previous_values() == []
        assert TimeSeries([(0.0, 7.0)]).previous_values() == []
