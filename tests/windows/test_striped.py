"""MRV-striped counters: exact totals, including under concurrent writers."""

import threading
from collections import Counter

import pytest

from repro.core.tracker import record_count_history
from repro.windows.aggregates import TagFrequencyWindow
from repro.windows.striped import StripedCounter, StripedCountHistory


class TestStripedCounter:
    def test_stripes_validated(self):
        with pytest.raises(ValueError):
            StripedCounter(stripes=0)

    def test_update_and_reads_match_plain_counter(self):
        striped = StripedCounter(stripes=4)
        plain = Counter()
        for keys in (["a", "b", "a"], ["b"], ["c", "a"]):
            striped.update(keys)
            plain.update(keys)
        assert striped.merged() == plain
        assert striped["a"] == plain["a"]
        assert striped.get("missing", 7) == 7
        assert "c" in striped and "missing" not in striped
        assert sorted(striped.items()) == sorted(plain.items())
        assert sorted(striped) == sorted(plain)
        assert len(striped) == len(plain)
        assert bool(striped)

    def test_subtract_and_delete(self):
        striped = StripedCounter(stripes=3)
        striped.update(["a", "a", "b"])
        striped.subtract(["a"])
        assert striped["a"] == 1
        del striped["a"]
        assert striped["a"] == 0
        assert "a" not in striped

    def test_setitem_replaces_the_merged_total(self):
        striped = StripedCounter(stripes=3)
        # Scatter "a" across stripes via seed + caller-stripe increments.
        striped.seed({"a": 5})
        striped.increment("a", 2)
        assert striped["a"] == 7
        striped["a"] = 3
        assert striped["a"] == 3
        assert striped.merged() == Counter({"a": 3})

    def test_seed_adopts_counts_wholesale(self):
        striped = StripedCounter(stripes=2)
        striped.update(["junk"])
        striped.seed({"a": 4, "b": 1})
        assert striped.merged() == Counter({"a": 4, "b": 1})

    def test_concurrent_writers_sum_exactly(self):
        striped = StripedCounter(stripes=4)
        increments = 2000
        workers = 4

        def writer(tag):
            for _ in range(increments):
                striped.update([tag, "shared"])

        threads = [
            threading.Thread(target=writer, args=(f"tag-{n}",))
            for n in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        merged = striped.merged()
        assert merged["shared"] == workers * increments
        for n in range(workers):
            assert merged[f"tag-{n}"] == increments


class TestStripedTagFrequencyWindow:
    def test_striped_window_counts_match_plain(self):
        plain = TagFrequencyWindow(100.0)
        striped = TagFrequencyWindow(100.0, stripes=4)
        docs = [
            (0.0, ("a", "b")),
            (10.0, ("b",)),
            (50.0, ("a", "c")),
            (120.0, ("c", "d")),  # evicts the first document
        ]
        for timestamp, tags in docs:
            plain.add_document(timestamp, tags)
            striped.add_document(timestamp, tags)
        assert dict(striped.counts) == dict(plain.counts)
        assert striped.document_count == plain.document_count

    def test_striped_window_snapshot_roundtrip(self):
        striped = TagFrequencyWindow(100.0, stripes=4)
        striped.add_document(0.0, ("a", "b"))
        striped.add_document(10.0, ("b",))
        state = striped.state_dict()

        restored = TagFrequencyWindow(100.0, stripes=2)
        restored.restore_state(state)
        assert dict(restored.counts) == {"a": 1, "b": 2}
        assert restored.document_count == 2


class TestStripedCountHistory:
    ROWS = [
        {"a": 3, "b": 1},
        {"a": 2, "c": 4},
        {"b": 5},
        {},
        {"a": 1, "b": 1, "c": 1, "d": 9},
    ]

    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            StripedCountHistory(history_length=4, stripes=0)
        with pytest.raises(ValueError):
            StripedCountHistory(history_length=0, stripes=2)

    def _plain(self, history_length=3):
        plain = {}
        for row in self.ROWS:
            record_count_history(plain, row, history_length)
        return plain

    def test_record_row_matches_the_shared_rule(self):
        striped = StripedCountHistory(history_length=3, stripes=4)
        for row in self.ROWS:
            striped.record_row(row)
        plain = self._plain()
        assert {tag: list(series) for tag, series in striped.items()} == \
            {tag: list(series) for tag, series in plain.items()}
        assert len(striped) == len(plain)
        for tag in plain:
            assert tag in striped
            assert list(striped[tag]) == list(plain[tag])
            assert list(striped.get(tag)) == list(plain[tag])
        assert striped.get("missing") is None
        assert "missing" not in striped
        assert bool(striped)
        assert sorted(striped) == sorted(plain)

    def test_seed_adopts_a_snapshot(self):
        striped = StripedCountHistory(history_length=3, stripes=4)
        striped.record_row({"junk": 1})
        striped.seed({"a": [1, 2], "b": [0, 0, 7]})
        assert dict(striped.merged()) == {"a": (1, 2), "b": (0, 0, 7)}
        # Seeded series are bounded: the next rows trim to history_length.
        striped.record_row({"a": 3, "b": 3})
        striped.record_row({"a": 4, "b": 4})
        assert list(striped["a"]) == [2, 3, 4]
        assert list(striped["b"]) == [7, 3, 4]

    def test_concurrent_readers_see_whole_series(self):
        striped = StripedCountHistory(history_length=8, stripes=4)
        stop = threading.Event()
        errors = []

        def reader():
            while not stop.is_set():
                for tag, series in striped.items():
                    # record_row appends one point to every live tag per
                    # row; a torn read would surface as a length skew of
                    # more than one row between tags of the same stripe.
                    if len(series) > 8:
                        errors.append((tag, series))

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        for index in range(200):
            striped.record_row({f"tag-{index % 10}": index})
        stop.set()
        for thread in threads:
            thread.join()
        assert not errors
