"""Tests for exponential decay and the decayed maximum."""

import math

import pytest

from repro.windows.decay import (
    TWO_DAYS_SECONDS,
    DecayedMaximum,
    ExponentialDecay,
    half_life_to_lambda,
)


class TestHalfLifeConversion:
    def test_half_life_gives_half_after_one_half_life(self):
        rate = half_life_to_lambda(10.0)
        assert math.exp(-rate * 10.0) == pytest.approx(0.5)

    def test_rejects_non_positive_half_life(self):
        with pytest.raises(ValueError):
            half_life_to_lambda(0.0)


class TestExponentialDecay:
    def test_default_half_life_is_two_days(self):
        assert ExponentialDecay().half_life == TWO_DAYS_SECONDS

    def test_factor_after_one_half_life_is_half(self):
        decay = ExponentialDecay(half_life=100.0)
        assert decay.factor(100.0) == pytest.approx(0.5)

    def test_factor_after_two_half_lives_is_quarter(self):
        decay = ExponentialDecay(half_life=100.0)
        assert decay.factor(200.0) == pytest.approx(0.25)

    def test_factor_at_zero_elapsed_is_one(self):
        assert ExponentialDecay(half_life=100.0).factor(0.0) == 1.0

    def test_decay_scales_value(self):
        decay = ExponentialDecay(half_life=100.0)
        assert decay.decay(8.0, 100.0) == pytest.approx(4.0)

    def test_negative_elapsed_is_rejected(self):
        with pytest.raises(ValueError):
            ExponentialDecay(half_life=100.0).factor(-1.0)

    def test_rejects_non_positive_half_life(self):
        with pytest.raises(ValueError):
            ExponentialDecay(half_life=0.0)


class TestDecayedMaximum:
    def test_initial_value_is_zero(self):
        tracker = DecayedMaximum(ExponentialDecay(100.0))
        assert tracker.value_at(50.0) == 0.0

    def test_update_records_observation(self):
        tracker = DecayedMaximum(ExponentialDecay(100.0))
        assert tracker.update(0.0, 3.0) == pytest.approx(3.0)

    def test_value_decays_over_time(self):
        tracker = DecayedMaximum(ExponentialDecay(100.0))
        tracker.update(0.0, 4.0)
        assert tracker.value_at(100.0) == pytest.approx(2.0)

    def test_new_observation_beats_decayed_maximum(self):
        tracker = DecayedMaximum(ExponentialDecay(100.0))
        tracker.update(0.0, 4.0)
        # After one half-life the stored max decays to 2; a new observation
        # of 3 becomes the maximum.
        assert tracker.update(100.0, 3.0) == pytest.approx(3.0)

    def test_decayed_maximum_beats_small_observation(self):
        tracker = DecayedMaximum(ExponentialDecay(100.0))
        tracker.update(0.0, 4.0)
        assert tracker.update(10.0, 0.1) == pytest.approx(4.0 * 0.5 ** 0.1, rel=1e-6)

    def test_paper_half_life_semantics(self):
        # Score from two days ago weighs half as much as a fresh one.
        tracker = DecayedMaximum()
        tracker.update(0.0, 1.0)
        assert tracker.value_at(TWO_DAYS_SECONDS) == pytest.approx(0.5)

    def test_rejects_negative_observation(self):
        tracker = DecayedMaximum()
        with pytest.raises(ValueError):
            tracker.update(0.0, -1.0)

    def test_rejects_evaluation_in_the_past(self):
        tracker = DecayedMaximum()
        tracker.update(10.0, 1.0)
        with pytest.raises(ValueError):
            tracker.value_at(5.0)

    def test_reset_clears_state(self):
        tracker = DecayedMaximum()
        tracker.update(0.0, 1.0)
        tracker.reset()
        assert tracker.value_at(10.0) == 0.0
        assert tracker.last_update is None
