"""Tests for the windowed aggregates."""

import pytest

from repro.windows.aggregates import (
    SlidingAverage,
    SlidingCounter,
    SlidingSum,
    TagFrequencyWindow,
)


class TestSlidingSum:
    def test_sums_live_values(self):
        aggregate = SlidingSum(10.0)
        aggregate.add(0.0, 2.0)
        aggregate.add(5.0, 3.0)
        assert aggregate.value == pytest.approx(5.0)

    def test_expired_values_leave_the_sum(self):
        aggregate = SlidingSum(10.0)
        aggregate.add(0.0, 2.0)
        aggregate.add(20.0, 3.0)
        assert aggregate.value == pytest.approx(3.0)

    def test_advance_without_adding(self):
        aggregate = SlidingSum(10.0)
        aggregate.add(0.0, 2.0)
        aggregate.advance_to(50.0)
        assert aggregate.value == 0.0
        assert len(aggregate) == 0


class TestSlidingAverage:
    def test_average_of_live_values(self):
        average = SlidingAverage(10.0)
        average.add(0.0, 2.0)
        average.add(1.0, 4.0)
        assert average.value == pytest.approx(3.0)

    def test_empty_average_is_zero(self):
        assert SlidingAverage(10.0).value == 0.0

    def test_rate_counts_arrivals_per_time_unit(self):
        average = SlidingAverage(10.0)
        for t in range(5):
            average.add(float(t))
        assert average.rate() == pytest.approx(0.5)

    def test_eviction_changes_average(self):
        average = SlidingAverage(10.0)
        average.add(0.0, 100.0)
        average.add(20.0, 4.0)
        assert average.value == pytest.approx(4.0)


class TestSlidingCounter:
    def test_counts_live_events(self):
        counter = SlidingCounter(10.0)
        counter.add(0.0)
        counter.add(5.0)
        assert counter.value == 2

    def test_advance_expires_events(self):
        counter = SlidingCounter(10.0)
        counter.add(0.0)
        counter.advance_to(20.0)
        assert counter.value == 0

    def test_horizon_exposed(self):
        assert SlidingCounter(7.0).horizon == 7.0


class TestTagFrequencyWindow:
    def test_counts_documents_per_tag(self):
        window = TagFrequencyWindow(100.0)
        window.add_document(1.0, ["a", "b"])
        window.add_document(2.0, ["a"])
        assert window.count("a") == 2
        assert window.count("b") == 1
        assert window.count("missing") == 0

    def test_duplicate_tags_in_one_document_count_once(self):
        window = TagFrequencyWindow(100.0)
        window.add_document(1.0, ["a", "a", "a"])
        assert window.count("a") == 1

    def test_document_count(self):
        window = TagFrequencyWindow(100.0)
        window.add_document(1.0, ["a"])
        window.add_document(2.0, ["b"])
        assert window.document_count == 2

    def test_frequency_is_fraction_of_documents(self):
        window = TagFrequencyWindow(100.0)
        window.add_document(1.0, ["a", "b"])
        window.add_document(2.0, ["a"])
        assert window.frequency("a") == pytest.approx(1.0)
        assert window.frequency("b") == pytest.approx(0.5)

    def test_frequency_of_empty_window_is_zero(self):
        assert TagFrequencyWindow(10.0).frequency("a") == 0.0

    def test_eviction_removes_counts_and_documents(self):
        window = TagFrequencyWindow(10.0)
        window.add_document(0.0, ["a", "b"])
        window.add_document(20.0, ["a"])
        assert window.count("a") == 1
        assert window.count("b") == 0
        assert window.document_count == 1
        assert "b" not in window.tags()

    def test_top_tags_ordering_and_tie_break(self):
        window = TagFrequencyWindow(100.0)
        window.add_document(1.0, ["b", "a"])
        window.add_document(2.0, ["a"])
        window.add_document(3.0, ["c"])
        assert window.top_tags(2) == [("a", 2), ("b", 1)]

    def test_top_tags_with_non_positive_k(self):
        window = TagFrequencyWindow(100.0)
        window.add_document(1.0, ["a"])
        assert window.top_tags(0) == []

    def test_snapshot_returns_copy(self):
        window = TagFrequencyWindow(100.0)
        window.add_document(1.0, ["a"])
        snapshot = window.snapshot()
        snapshot["a"] = 99
        assert window.count("a") == 1

    def test_rejects_out_of_order_documents(self):
        window = TagFrequencyWindow(100.0)
        window.add_document(5.0, ["a"])
        with pytest.raises(ValueError):
            window.add_document(4.0, ["b"])

    def test_advance_to_expires_documents(self):
        window = TagFrequencyWindow(10.0)
        window.add_document(0.0, ["a"])
        window.advance_to(100.0)
        assert window.document_count == 0


class TestBatchAddDocuments:
    def test_batch_add_matches_sequential_adds(self):
        sequential = TagFrequencyWindow(10.0)
        batched = TagFrequencyWindow(10.0)
        documents = [(0.0, ["a", "b"]), (4.0, ["b"]), (12.0, ["c", "a"])]
        for timestamp, tags in documents:
            sequential.add_document(timestamp, tags)
        assert batched.add_documents(documents) == 3
        assert sequential.snapshot() == batched.snapshot()
        assert sequential.document_count == batched.document_count
        assert sequential.latest_timestamp == batched.latest_timestamp

    def test_prepared_batch_trusts_sorted_tuples(self):
        window = TagFrequencyWindow(100.0)
        window.add_documents([(0.0, ("a", "b")), (1.0, ("b",))], prepared=True)
        assert window.count("b") == 2
        assert window.count("a") == 1

    def test_empty_batch_is_a_noop(self):
        window = TagFrequencyWindow(10.0)
        assert window.add_documents([]) == 0
        assert window.document_count == 0

    def test_batch_rejects_out_of_order(self):
        window = TagFrequencyWindow(10.0)
        with pytest.raises(ValueError):
            window.add_documents([(5.0, ["a"]), (1.0, ["b"])])

    def test_rejected_batch_leaves_window_unchanged(self):
        window = TagFrequencyWindow(10.0)
        with pytest.raises(ValueError):
            window.add_documents([(5.0, ["a"]), (1.0, ["b"])])
        assert window.document_count == 0
        assert window.snapshot() == {}
        # Still consistent after the rejection: no phantom events to evict.
        window.add_document(20.0, ["c"])
        assert window.document_count == 1
        assert window.count("c") == 1
