"""Tests for the time- and count-based sliding windows."""

import pytest

from repro.windows.sliding import CountSlidingWindow, TimeSlidingWindow, WindowEntry


class TestWindowEntry:
    def test_holds_timestamp_and_value(self):
        entry = WindowEntry(5.0, "payload")
        assert entry.timestamp == 5.0
        assert entry.value == "payload"

    def test_default_value_is_one(self):
        assert WindowEntry(1.0).value == 1.0

    def test_rejects_negative_timestamp(self):
        with pytest.raises(ValueError):
            WindowEntry(-1.0)


class TestTimeSlidingWindow:
    def test_rejects_non_positive_horizon(self):
        with pytest.raises(ValueError):
            TimeSlidingWindow(0.0)

    def test_empty_window_has_no_entries(self):
        window = TimeSlidingWindow(10.0)
        assert len(window) == 0
        assert not window
        assert window.latest_timestamp is None

    def test_append_retains_entries_inside_horizon(self):
        window = TimeSlidingWindow(10.0)
        window.append(1.0, "a")
        window.append(5.0, "b")
        assert window.values() == ["a", "b"]
        assert window.timestamps() == [1.0, 5.0]

    def test_old_entries_are_evicted_on_append(self):
        window = TimeSlidingWindow(10.0)
        window.append(0.0, "old")
        window.append(15.0, "new")
        assert window.values() == ["new"]

    def test_eviction_boundary_is_exclusive(self):
        # An entry exactly `horizon` old is evicted (half-open window).
        window = TimeSlidingWindow(10.0)
        window.append(0.0, "boundary")
        window.append(10.0, "now")
        assert window.values() == ["now"]

    def test_entry_just_inside_horizon_is_kept(self):
        window = TimeSlidingWindow(10.0)
        window.append(0.1, "kept")
        window.append(10.0, "now")
        assert window.values() == ["kept", "now"]

    def test_rejects_out_of_order_appends(self):
        window = TimeSlidingWindow(10.0)
        window.append(5.0)
        with pytest.raises(ValueError):
            window.append(4.0)

    def test_advance_to_evicts_without_inserting(self):
        window = TimeSlidingWindow(10.0)
        window.append(0.0, "a")
        window.advance_to(20.0)
        assert len(window) == 0
        assert window.latest_timestamp == 20.0

    def test_advance_backwards_is_rejected(self):
        window = TimeSlidingWindow(10.0)
        window.append(5.0)
        with pytest.raises(ValueError):
            window.advance_to(1.0)

    def test_count_with_predicate(self):
        window = TimeSlidingWindow(100.0)
        for i in range(6):
            window.append(float(i), i)
        assert window.count() == 6
        assert window.count(lambda v: v % 2 == 0) == 3

    def test_span_covers_live_entries(self):
        window = TimeSlidingWindow(100.0)
        window.append(2.0)
        window.append(9.0)
        assert window.span() == pytest.approx(7.0)

    def test_span_is_zero_for_single_entry(self):
        window = TimeSlidingWindow(100.0)
        window.append(2.0)
        assert window.span() == 0.0

    def test_clear_keeps_clock(self):
        window = TimeSlidingWindow(10.0)
        window.append(5.0)
        window.clear()
        assert len(window) == 0
        assert window.latest_timestamp == 5.0

    def test_iteration_yields_entries_in_order(self):
        window = TimeSlidingWindow(100.0)
        window.append(1.0, "x")
        window.append(2.0, "y")
        assert [entry.value for entry in window] == ["x", "y"]


class TestCountSlidingWindow:
    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            CountSlidingWindow(0)

    def test_keeps_only_most_recent_entries(self):
        window = CountSlidingWindow(3)
        for i in range(5):
            window.append(float(i), i)
        assert window.values() == [2, 3, 4]

    def test_full_flag(self):
        window = CountSlidingWindow(2)
        assert not window.full
        window.append(1.0)
        window.append(2.0)
        assert window.full

    def test_rejects_out_of_order_appends(self):
        window = CountSlidingWindow(3)
        window.append(5.0)
        with pytest.raises(ValueError):
            window.append(4.0)

    def test_clear_empties_window(self):
        window = CountSlidingWindow(3)
        window.append(1.0)
        window.clear()
        assert len(window) == 0
