"""Tests for seed-tag selection."""

import pytest

from repro.core.seeds import (
    HybridSeedSelector,
    PopularitySeedSelector,
    VolatilitySeedSelector,
    make_seed_selector,
)
from repro.windows.aggregates import TagFrequencyWindow


def window_with(counts, horizon=1000.0):
    """Build a tag window where each tag appears ``counts[tag]`` times."""
    window = TagFrequencyWindow(horizon)
    t = 0.0
    for tag, count in counts.items():
        for _ in range(count):
            window.add_document(t, [tag])
            t += 0.001
    return window


class TestPopularitySeedSelector:
    def test_selects_most_frequent_tags(self):
        window = window_with({"hot": 20, "warm": 10, "cold": 3})
        seeds = PopularitySeedSelector(num_seeds=2, min_count=1).select(window)
        assert seeds == ["hot", "warm"]

    def test_min_count_filters_rare_tags(self):
        window = window_with({"hot": 20, "rare": 2})
        seeds = PopularitySeedSelector(num_seeds=10, min_count=3).select(window)
        assert seeds == ["hot"]

    def test_ties_broken_alphabetically(self):
        window = window_with({"b": 5, "a": 5})
        seeds = PopularitySeedSelector(num_seeds=2, min_count=1).select(window)
        assert seeds == ["a", "b"]

    def test_empty_window_gives_no_seeds(self):
        window = TagFrequencyWindow(10.0)
        assert PopularitySeedSelector().select(window) == []

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            PopularitySeedSelector(num_seeds=0)
        with pytest.raises(ValueError):
            PopularitySeedSelector(min_count=0)


class TestVolatilitySeedSelector:
    def test_prefers_fluctuating_tags(self):
        window = window_with({"steady": 10, "swinging": 10})
        history = {
            "steady": [10, 10, 10, 10],
            "swinging": [1, 20, 2, 18],
        }
        seeds = VolatilitySeedSelector(num_seeds=1, min_count=1).select(window, history)
        assert seeds == ["swinging"]

    def test_without_history_falls_back_gracefully(self):
        window = window_with({"a": 10, "b": 5})
        seeds = VolatilitySeedSelector(num_seeds=2, min_count=1).select(window, None)
        assert set(seeds) == {"a", "b"}

    def test_history_length_validation(self):
        with pytest.raises(ValueError):
            VolatilitySeedSelector(history_length=1)


class TestHybridSeedSelector:
    def test_combines_popularity_and_volatility(self):
        window = window_with({"popular-steady": 30, "popular-volatile": 28, "rare": 2})
        history = {
            "popular-steady": [30, 30, 30],
            "popular-volatile": [5, 40, 10],
            "rare": [2, 2, 2],
        }
        seeds = HybridSeedSelector(num_seeds=1, min_count=1).select(window, history)
        assert seeds == ["popular-volatile"]


class TestFactory:
    def test_builds_each_criterion(self):
        assert isinstance(make_seed_selector("popularity"), PopularitySeedSelector)
        assert isinstance(make_seed_selector("volatility"), VolatilitySeedSelector)
        assert isinstance(make_seed_selector("hybrid"), HybridSeedSelector)

    def test_unknown_criterion_rejected(self):
        with pytest.raises(ValueError):
            make_seed_selector("random")

    def test_num_seeds_forwarded(self):
        selector = make_seed_selector("popularity", num_seeds=3)
        window = window_with({f"t{i}": 10 - i for i in range(8)})
        assert len(selector.select(window)) == 3
