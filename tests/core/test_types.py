"""Tests for tag pairs, emergent topics and rankings."""

import pytest

from repro.core.types import EmergentTopic, Ranking, TagPair, overlap_at_k


class TestTagPair:
    def test_canonical_ordering(self):
        assert TagPair("b", "a") == TagPair("a", "b")
        assert TagPair("b", "a").first == "a"
        assert hash(TagPair("b", "a")) == hash(TagPair("a", "b"))

    def test_rejects_identical_or_empty_tags(self):
        with pytest.raises(ValueError):
            TagPair("a", "a")
        with pytest.raises(ValueError):
            TagPair("", "a")

    def test_constructors(self):
        assert TagPair.of("x", "y") == TagPair.from_tuple(("y", "x"))

    def test_contains_and_other(self):
        pair = TagPair("a", "b")
        assert pair.contains("a")
        assert not pair.contains("c")
        assert pair.other("a") == "b"
        assert pair.other("b") == "a"
        with pytest.raises(KeyError):
            pair.other("c")

    def test_as_tuple_and_str(self):
        pair = TagPair("volcano", "air traffic")
        assert pair.as_tuple() == ("air traffic", "volcano")
        assert str(pair) == "(air traffic, volcano)"

    def test_pairs_are_sortable(self):
        pairs = [TagPair("c", "d"), TagPair("a", "b")]
        assert sorted(pairs)[0] == TagPair("a", "b")


class TestEmergentTopic:
    def test_rejects_negative_score(self):
        with pytest.raises(ValueError):
            EmergentTopic(pair=TagPair("a", "b"), score=-1.0)

    def test_tags_property_and_describe(self):
        topic = EmergentTopic(pair=TagPair("b", "a"), score=0.5, correlation=0.4)
        assert topic.tags == ("a", "b")
        assert "0.5" in topic.describe()


def ranking_from(scores, timestamp=0.0, label=""):
    topics = [
        EmergentTopic(pair=TagPair(*pair), score=score, timestamp=timestamp)
        for pair, score in scores
    ]
    return Ranking(timestamp=timestamp, topics=topics, label=label)


class TestRanking:
    def test_topics_sorted_by_score_descending(self):
        ranking = ranking_from([(("a", "b"), 0.1), (("c", "d"), 0.9)])
        assert ranking[0].pair == TagPair("c", "d")
        assert ranking[1].pair == TagPair("a", "b")

    def test_ties_broken_by_pair_order(self):
        ranking = ranking_from([(("x", "y"), 0.5), (("a", "b"), 0.5)])
        assert ranking[0].pair == TagPair("a", "b")

    def test_top_k(self):
        ranking = ranking_from([(("a", "b"), 0.9), (("c", "d"), 0.5), (("e", "f"), 0.1)])
        assert len(ranking.top(2)) == 2
        assert ranking.top(0) == []
        assert len(ranking.top(10)) == 3

    def test_position_of_and_contains(self):
        ranking = ranking_from([(("a", "b"), 0.9), (("c", "d"), 0.5)])
        assert ranking.position_of(TagPair("c", "d")) == 1
        assert ranking.position_of(TagPair("x", "y")) is None
        assert ranking.contains_pair(TagPair("a", "b"))

    def test_pairs_and_scores(self):
        ranking = ranking_from([(("a", "b"), 0.9)])
        assert ranking.pairs() == [TagPair("a", "b")]
        assert ranking.scores() == {TagPair("a", "b"): 0.9}

    def test_describe_renders_entries(self):
        ranking = ranking_from([(("a", "b"), 0.9)], timestamp=3600.0, label="demo")
        text = ranking.describe()
        assert "demo" in text
        assert "(a, b)" in text

    def test_describe_empty(self):
        assert "(empty)" in Ranking(timestamp=0.0).describe()

    def test_iteration_and_len(self):
        ranking = ranking_from([(("a", "b"), 0.9), (("c", "d"), 0.5)])
        assert len(ranking) == 2
        assert len(list(ranking)) == 2


class TestOverlapAtK:
    def test_identical_rankings_overlap_fully(self):
        first = ranking_from([(("a", "b"), 0.9), (("c", "d"), 0.5)])
        second = ranking_from([(("a", "b"), 0.8), (("c", "d"), 0.4)])
        assert overlap_at_k(first, second, 2) == 1.0

    def test_disjoint_rankings_do_not_overlap(self):
        first = ranking_from([(("a", "b"), 0.9)])
        second = ranking_from([(("c", "d"), 0.9)])
        assert overlap_at_k(first, second, 1) == 0.0

    def test_partial_overlap(self):
        first = ranking_from([(("a", "b"), 0.9), (("c", "d"), 0.5)])
        second = ranking_from([(("a", "b"), 0.9), (("e", "f"), 0.5)])
        assert overlap_at_k(first, second, 2) == pytest.approx(0.5)

    def test_empty_rankings_overlap_trivially(self):
        assert overlap_at_k(Ranking(0.0), Ranking(0.0), 5) == 1.0
        assert overlap_at_k(Ranking(0.0), Ranking(0.0), 0) == 0.0
