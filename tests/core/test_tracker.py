"""Tests for the correlation tracker."""

import pytest

from repro.core.correlation import OverlapCorrelation
from repro.core.tracker import CorrelationTracker
from repro.core.types import TagPair


class TestIngestion:
    def test_counts_tags_and_pairs_in_window(self):
        tracker = CorrelationTracker(window_horizon=100.0)
        tracker.observe(1.0, ["a", "b"])
        tracker.observe(2.0, ["a", "c"])
        assert tracker.tag_count("a") == 2
        assert tracker.tag_count("b") == 1
        assert tracker.pair_count(TagPair("a", "b")) == 1
        assert tracker.document_count() == 2

    def test_entities_merged_when_enabled(self):
        tracker = CorrelationTracker(window_horizon=100.0, use_entities=True)
        tracker.observe(1.0, ["news"], entities=["Athens"])
        assert tracker.tag_count("athens") == 1
        assert tracker.pair_count(TagPair("athens", "news")) == 1

    def test_entities_ignored_when_disabled(self):
        tracker = CorrelationTracker(window_horizon=100.0, use_entities=False)
        tracker.observe(1.0, ["news"], entities=["Athens"])
        assert tracker.tag_count("athens") == 0

    def test_window_eviction(self):
        tracker = CorrelationTracker(window_horizon=10.0)
        tracker.observe(0.0, ["a", "b"])
        tracker.observe(20.0, ["a"])
        assert tracker.tag_count("b") == 0
        assert tracker.pair_count(TagPair("a", "b")) == 0
        assert tracker.document_count() == 1

    def test_out_of_order_documents_rejected(self):
        tracker = CorrelationTracker(window_horizon=10.0)
        tracker.observe(5.0, ["a"])
        with pytest.raises(ValueError):
            tracker.observe(1.0, ["b"])

    def test_documents_seen_counts_everything(self):
        tracker = CorrelationTracker(window_horizon=1.0)
        tracker.observe(0.0, ["a"])
        tracker.observe(100.0, ["b"])
        assert tracker.documents_seen == 2

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CorrelationTracker(window_horizon=0.0)
        with pytest.raises(ValueError):
            CorrelationTracker(window_horizon=1.0, min_pair_support=0)
        with pytest.raises(ValueError):
            CorrelationTracker(window_horizon=1.0, history_length=1)


class TestCandidatePairs:
    def test_only_pairs_with_a_seed_are_candidates(self):
        tracker = CorrelationTracker(window_horizon=100.0, min_pair_support=1)
        tracker.observe(1.0, ["seed", "x"])
        tracker.observe(2.0, ["y", "z"])
        candidates = tracker.candidate_pairs(["seed"])
        assert [pair for pair, _ in candidates] == [TagPair("seed", "x")]
        assert candidates[0][1] == "seed"

    def test_min_pair_support_filters_weak_pairs(self):
        tracker = CorrelationTracker(window_horizon=100.0, min_pair_support=2)
        tracker.observe(1.0, ["seed", "x"])
        tracker.observe(2.0, ["seed", "y"])
        tracker.observe(3.0, ["seed", "y"])
        candidates = tracker.candidate_pairs(["seed"])
        assert [pair for pair, _ in candidates] == [TagPair("seed", "y")]

    def test_no_seeds_means_no_candidates(self):
        tracker = CorrelationTracker(window_horizon=100.0)
        tracker.observe(1.0, ["a", "b"])
        assert tracker.candidate_pairs([]) == []

    def test_seed_tag_reported_for_double_seed_pair(self):
        tracker = CorrelationTracker(window_horizon=100.0, min_pair_support=1)
        tracker.observe(1.0, ["a", "b"])
        candidates = tracker.candidate_pairs(["a", "b"])
        assert candidates == [(TagPair("a", "b"), "a")]

    def test_min_pair_support_is_mutable_between_evaluations(self):
        tracker = CorrelationTracker(window_horizon=100.0, min_pair_support=1)
        tracker.observe(1.0, ["seed", "x"])
        tracker.observe(2.0, ["seed", "y"])
        tracker.observe(3.0, ["seed", "y"])
        assert len(tracker.candidate_pairs(["seed"])) == 2
        tracker.min_pair_support = 2
        assert tracker.min_pair_support == 2
        assert [p for p, _ in tracker.candidate_pairs(["seed"])] \
            == [TagPair("seed", "y")]
        with pytest.raises(ValueError):
            tracker.min_pair_support = 0


class TestCorrelation:
    def test_jaccard_by_default(self):
        tracker = CorrelationTracker(window_horizon=100.0)
        tracker.observe(1.0, ["a", "b"])
        tracker.observe(2.0, ["a"])
        # |a∩b| = 1, |a∪b| = 2
        assert tracker.correlation(TagPair("a", "b")) == pytest.approx(0.5)

    def test_custom_measure(self):
        tracker = CorrelationTracker(window_horizon=100.0, measure=OverlapCorrelation())
        tracker.observe(1.0, ["a", "b"])
        tracker.observe(2.0, ["a"])
        assert tracker.correlation(TagPair("a", "b")) == pytest.approx(1.0)

    def test_pair_counts_snapshot(self):
        tracker = CorrelationTracker(window_horizon=100.0)
        tracker.observe(1.0, ["a", "b"])
        tracker.observe(2.0, ["a"])
        counts = tracker.pair_counts_for(TagPair("a", "b"))
        assert (counts.count_a, counts.count_b, counts.count_both) == (2, 1, 1)
        assert counts.total_documents == 2


class TestEvaluation:
    def test_evaluate_appends_to_history(self):
        tracker = CorrelationTracker(window_horizon=100.0, min_pair_support=1)
        tracker.observe(1.0, ["s", "x"])
        observations = tracker.evaluate(10.0, ["s"])
        assert len(observations) == 1
        history = tracker.history(TagPair("s", "x"))
        assert len(history) == 1
        assert history.values[0] == observations[0].correlation

    def test_history_is_trimmed_to_length(self):
        tracker = CorrelationTracker(window_horizon=1000.0, min_pair_support=1,
                                     history_length=3)
        tracker.observe(0.0, ["s", "x"])
        for step in range(1, 8):
            tracker.evaluate(float(step), ["s"])
        assert len(tracker.history(TagPair("s", "x"))) == 3

    def test_unknown_pair_history_is_empty(self):
        tracker = CorrelationTracker(window_horizon=10.0)
        assert len(tracker.history(TagPair("a", "b"))) == 0

    def test_count_history_recorded_per_evaluation(self):
        tracker = CorrelationTracker(window_horizon=100.0, min_pair_support=1)
        tracker.observe(1.0, ["s", "x"])
        tracker.evaluate(2.0, ["s"])
        tracker.evaluate(3.0, ["s"])
        history = tracker.count_history()
        assert history["s"] == [1, 1]

    def test_usage_tracking_for_kl_measure(self):
        tracker = CorrelationTracker(window_horizon=100.0, track_usage=True,
                                     min_pair_support=1)
        tracker.observe(1.0, ["a", "b", "c"])
        tracker.observe(2.0, ["a", "b"])
        # usage distributions exist internally; evaluate should not fail and
        # correlations stay bounded.
        observations = tracker.evaluate(3.0, ["a"])
        assert all(0.0 <= obs.correlation <= 1.0 for obs in observations)

    def test_tracked_pairs_listed_sorted(self):
        tracker = CorrelationTracker(window_horizon=100.0, min_pair_support=1)
        tracker.observe(1.0, ["s", "x"])
        tracker.observe(2.0, ["s", "a"])
        tracker.evaluate(3.0, ["s"])
        assert tracker.tracked_pairs() == [TagPair("a", "s"), TagPair("s", "x")]


class TestNormalization:
    def test_tags_lowercased_and_stripped_in_tracker(self):
        tracker = CorrelationTracker(window_horizon=100.0)
        tracker.observe(1.0, ["Politics", "  VOLCANO "])
        assert tracker.tag_count("politics") == 1
        assert tracker.tag_count("volcano") == 1
        assert tracker.pair_count(TagPair("politics", "volcano")) == 1
        assert tracker.tag_count("Politics") == 0

    def test_mixed_case_spellings_collapse_to_one_tag(self):
        tracker = CorrelationTracker(window_horizon=100.0)
        tracker.observe(1.0, ["News"])
        tracker.observe(2.0, ["news"])
        tracker.observe(3.0, ["NEWS"])
        assert tracker.tag_count("news") == 3

    def test_whitespace_only_tags_dropped(self):
        tracker = CorrelationTracker(window_horizon=100.0)
        tracker.observe(1.0, ["a", "   ", ""])
        assert tracker.tag_window.tags() == ["a"]

    def test_direct_tracker_and_engine_agree_on_identity(self):
        # The satellite fix: direct callers used to bypass the engine's
        # lowercasing; normalisation now lives in the tracker itself.
        tracker = CorrelationTracker(window_horizon=100.0)
        tracker.observe(1.0, ["Athens"], entities=["SIGMOD"])
        assert tracker.pair_count(TagPair("athens", "sigmod")) == 1

    def test_engine_query_surface_normalises_like_the_tracker(self):
        from repro.core.config import EnBlogueConfig
        from repro.core.engine import EnBlogue
        engine = EnBlogue(EnBlogueConfig(
            min_seed_count=1, min_pair_support=1, min_history=2))
        engine.tracker.observe(0.0, ["Athens ", "sigmod"])
        engine.evaluate_now(3600.0)
        # Whitespace- and case-variant queries reach the same history.
        assert len(engine.correlation_history("Athens ", "SIGMOD")) == 1
        assert len(engine.correlation_history("athens", "sigmod")) == 1

    def test_rejected_malformed_batch_leaves_tracker_unchanged(self):
        tracker = CorrelationTracker(window_horizon=10.0)
        tracker.observe(1.0, ["a", "b"])
        with pytest.raises(TypeError):
            tracker.observe_many([(2.0, ["c", "d"], ()), (3.0, None, ())])
        # The valid prefix of the malformed chunk must not have left
        # phantom pair events behind (their eviction would corrupt counts).
        assert tracker.documents_seen == 1
        assert len(tracker._pair_events) == 1
        tracker.observe(3.0, ["c", "d"])
        tracker.advance_to(11.5)
        assert tracker.pair_count(TagPair("c", "d")) == 1


class TestEvictionBoundary:
    """``timestamp <= cutoff`` must agree across every windowed structure."""

    def test_document_exactly_at_cutoff_evicted_everywhere(self):
        tracker = CorrelationTracker(window_horizon=10.0, track_usage=True,
                                     min_pair_support=1)
        tracker.observe(0.0, ["a", "b", "c"])
        # cutoff = 10 - 10 = 0; the document at t=0 satisfies t <= cutoff.
        tracker.observe(10.0, ["x"])
        assert tracker.document_count() == 1
        assert tracker.tag_count("a") == 0
        assert tracker.pair_count(TagPair("a", "b")) == 0
        assert len(tracker.candidate_index) == 0
        # Only the live document's tag remains in the usage distributions.
        assert set(tracker._usage) <= {"x"}
        assert not any(tracker._usage.get(tag) for tag in ("a", "b", "c"))

    def test_document_just_inside_window_survives_everywhere(self):
        tracker = CorrelationTracker(window_horizon=10.0, track_usage=True,
                                     min_pair_support=1)
        tracker.observe(0.1, ["a", "b"])
        tracker.observe(10.0, ["x"])
        assert tracker.document_count() == 2
        assert tracker.tag_count("a") == 1
        assert tracker.pair_count(TagPair("a", "b")) == 1
        assert "a" in tracker._usage

    def test_advance_to_evicts_like_observe(self):
        tracker = CorrelationTracker(window_horizon=10.0, track_usage=True,
                                     min_pair_support=1)
        tracker.observe(0.0, ["a", "b"])
        tracker.advance_to(10.0)
        assert tracker.document_count() == 0
        assert tracker.pair_count(TagPair("a", "b")) == 0
        assert tracker._usage == {}

    def test_batch_eviction_matches_sequential_eviction(self):
        sequential = CorrelationTracker(window_horizon=5.0, track_usage=True,
                                        min_pair_support=1)
        batched = CorrelationTracker(window_horizon=5.0, track_usage=True,
                                     min_pair_support=1)
        observations = [(float(t), ["a", "b"] if t % 2 else ["b", "c"], ())
                        for t in range(12)]
        for timestamp, tags, entities in observations:
            sequential.observe(timestamp, tags, entities)
        batched.observe_many(observations)
        assert sequential.tag_window.snapshot() == batched.tag_window.snapshot()
        assert dict(sequential.candidate_index.items()) \
            == dict(batched.candidate_index.items())
        assert sequential._usage == batched._usage
        assert sequential.document_count() == batched.document_count()


class TestMinPairSupportPropagation:
    """Regression: updating the threshold must reach the candidate index."""

    def _tracker_with_mixed_support(self):
        tracker = CorrelationTracker(window_horizon=100.0, min_pair_support=1)
        # (a, b) co-occurs three times, (a, c) once.
        tracker.observe(0.0, ["a", "b"])
        tracker.observe(1.0, ["a", "b"])
        tracker.observe(2.0, ["a", "b"])
        tracker.observe(3.0, ["a", "c"])
        return tracker

    def test_raising_support_hides_weak_candidates(self):
        tracker = self._tracker_with_mixed_support()
        assert [p for p, _ in tracker.candidate_pairs(["a"])] \
            == [TagPair("a", "b"), TagPair("a", "c")]
        tracker.min_pair_support = 2
        assert tracker.min_pair_support == 2
        assert tracker.candidate_index.min_support == 2
        assert [p for p, _ in tracker.candidate_pairs(["a"])] == [TagPair("a", "b")]

    def test_lowering_support_restores_retained_postings(self):
        # Sub-threshold pairs stay in the postings with their counts, so
        # lowering the threshold brings them back without any re-ingestion.
        tracker = self._tracker_with_mixed_support()
        tracker.min_pair_support = 3
        assert [p for p, _ in tracker.candidate_pairs(["a"])] == [TagPair("a", "b")]
        tracker.min_pair_support = 1
        assert [p for p, _ in tracker.candidate_pairs(["a"])] \
            == [TagPair("a", "b"), TagPair("a", "c")]
        assert tracker.pair_count(TagPair("a", "c")) == 1

    def test_threshold_validated_on_every_write_path(self):
        tracker = self._tracker_with_mixed_support()
        with pytest.raises(ValueError):
            tracker.min_pair_support = 0
        with pytest.raises(ValueError):
            tracker.candidate_index.min_support = 0
        assert tracker.min_pair_support == 1


class TestCountHistoryBound:
    def test_series_bounded_without_rescan(self):
        # Bounded deques replace the per-evaluation rescan-and-slice; the
        # observable contract is unchanged: last history_length points.
        tracker = CorrelationTracker(window_horizon=1000.0,
                                     min_pair_support=1, history_length=3)
        tracker.observe(1.0, ["s", "x"])
        for step in range(2, 10):
            tracker.evaluate(float(step), ["s"])
        history = tracker.count_history()
        assert history["s"] == [1, 1, 1]
        assert all(len(series) <= 3 for series in history.values())

    def test_disappeared_tag_records_explicit_zeros(self):
        tracker = CorrelationTracker(window_horizon=5.0,
                                     min_pair_support=1, history_length=4)
        tracker.observe(1.0, ["s", "x"])
        tracker.evaluate(2.0, ["s"])
        tracker.evaluate(20.0, ["s"])  # window expired: counts drop to zero
        history = tracker.count_history()
        assert history["s"] == [1, 0]
        assert history["x"] == [1, 0]

    def test_count_history_returns_plain_lists(self):
        # Consumers (seed selectors, JSON snapshots) slice and serialise
        # the series; the public copy stays a list whatever the internal
        # container is.
        tracker = CorrelationTracker(window_horizon=100.0,
                                     min_pair_support=1)
        tracker.observe(1.0, ["s", "x"])
        tracker.evaluate(2.0, ["s"])
        assert all(type(series) is list
                   for series in tracker.count_history().values())


class TestDecomposerEviction:
    def test_memo_never_exceeds_the_limit(self):
        from repro.core.tracker import (
            _DECOMPOSE_CACHE_LIMIT,
            _DECOMPOSE_EVICT_BATCH,
            DocumentDecomposer,
        )

        decomposer = DocumentDecomposer()
        for index in range(_DECOMPOSE_CACHE_LIMIT + 100):
            decomposer.decompose(frozenset({f"tag-{index}", "anchor"}))
            assert len(decomposer._cache) <= _DECOMPOSE_CACHE_LIMIT
        # Partial eviction: a churn spike drops one batch, not the memo.
        assert len(decomposer._cache) \
            >= _DECOMPOSE_CACHE_LIMIT - _DECOMPOSE_EVICT_BATCH

    def test_eviction_is_fifo_and_keeps_recent_entries(self):
        from repro.core.tracker import (
            _DECOMPOSE_CACHE_LIMIT,
            DocumentDecomposer,
        )

        decomposer = DocumentDecomposer()
        oldest = frozenset({"tag-0", "anchor"})
        newest = frozenset({f"tag-{_DECOMPOSE_CACHE_LIMIT - 1}", "anchor"})
        for index in range(_DECOMPOSE_CACHE_LIMIT + 1):
            decomposer.decompose(frozenset({f"tag-{index}", "anchor"}))
        cache = decomposer._cache
        assert (oldest, frozenset()) not in cache
        assert (newest, frozenset()) in cache

    def test_eviction_does_not_change_results(self):
        from repro.core.tracker import DocumentDecomposer
        import repro.core.tracker as tracker_module

        decomposer = DocumentDecomposer()
        anchor = frozenset({"b", "a", "c"})
        expected = decomposer.decompose(anchor)
        original_limit = tracker_module._DECOMPOSE_CACHE_LIMIT
        # Shrink the limit so eviction actually fires in a short loop.
        tracker_module._DECOMPOSE_CACHE_LIMIT = 16
        try:
            for index in range(64):
                decomposer.decompose(frozenset({f"t{index}", "z"}))
            assert decomposer.decompose(anchor) == expected
        finally:
            tracker_module._DECOMPOSE_CACHE_LIMIT = original_limit
