"""Tests for personalization (show case 3)."""

import pytest

from repro.core.personalization import (
    PersonalizationEngine,
    UserProfile,
    personalize_ranking,
)
from repro.core.types import EmergentTopic, Ranking, TagPair


def ranking_from(scores, timestamp=0.0):
    topics = [
        EmergentTopic(pair=TagPair(*pair), score=score, timestamp=timestamp)
        for pair, score in scores
    ]
    return Ranking(timestamp=timestamp, topics=topics)


CATEGORY_TAGS = {
    "sports": ("tennis", "olympics", "baseball"),
    "politics": ("elections", "congress"),
}


class TestUserProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            UserProfile(user_id="")
        with pytest.raises(ValueError):
            UserProfile(user_id="u", boost=0.5)

    def test_keyword_matching_is_substring_and_case_insensitive(self):
        profile = UserProfile(user_id="u", keywords=("Volcano",))
        assert profile.matches_tag("volcano")
        assert profile.matches_tag("volcano eruption")
        assert not profile.matches_tag("weather")

    def test_category_matching_via_category_tags(self):
        profile = UserProfile(user_id="u", categories=("sports",),
                              category_tags=CATEGORY_TAGS)
        assert profile.matches_tag("tennis")
        assert not profile.matches_tag("elections")

    def test_match_strength_levels(self):
        profile = UserProfile(user_id="u", keywords=("tennis", "olympics"))
        assert profile.match_strength(TagPair("tennis", "olympics")) == 1.0
        assert profile.match_strength(TagPair("tennis", "weather")) == 0.5
        assert profile.match_strength(TagPair("economy", "weather")) == 0.0

    def test_update_preferences(self):
        profile = UserProfile(user_id="u", keywords=("old",))
        profile.update_keywords(["New"])
        profile.update_categories(["sports"])
        assert profile.keywords == ("new",)
        assert profile.categories == ("sports",)

    def test_interest_tags_deduplicated(self):
        profile = UserProfile(user_id="u", categories=("sports", "politics"),
                              category_tags=CATEGORY_TAGS)
        tags = profile.interest_tags()
        assert len(tags) == len(set(tags))
        assert "tennis" in tags and "elections" in tags


class TestPersonalizeRanking:
    def base_ranking(self):
        return ranking_from([
            (("elections", "white house"), 0.6),
            (("tennis", "olympics"), 0.5),
            (("economy", "banking"), 0.4),
        ])

    def test_matching_topics_are_boosted(self):
        profile = UserProfile(user_id="sports-fan", keywords=("tennis", "olympics"),
                              boost=3.0)
        personalized = personalize_ranking(self.base_ranking(), profile)
        assert personalized[0].pair == TagPair("olympics", "tennis")
        assert personalized[0].score == pytest.approx(0.5 * 3.0)

    def test_non_matching_scores_unchanged(self):
        profile = UserProfile(user_id="sports-fan", keywords=("tennis",))
        personalized = personalize_ranking(self.base_ranking(), profile)
        scores = personalized.scores()
        assert scores[TagPair("economy", "banking")] == pytest.approx(0.4)

    def test_filter_only_drops_non_matching_topics(self):
        profile = UserProfile(user_id="u", keywords=("tennis",), filter_only=True)
        personalized = personalize_ranking(self.base_ranking(), profile)
        assert personalized.pairs() == [TagPair("olympics", "tennis")]

    def test_top_k_truncation(self):
        profile = UserProfile(user_id="u", keywords=("tennis",))
        personalized = personalize_ranking(self.base_ranking(), profile, top_k=1)
        assert len(personalized) == 1

    def test_label_carries_user_id(self):
        profile = UserProfile(user_id="alice")
        assert personalize_ranking(self.base_ranking(), profile).label == "user:alice"

    def test_different_profiles_give_different_orderings(self):
        ranking = self.base_ranking()
        sports = personalize_ranking(
            ranking, UserProfile(user_id="s", keywords=("tennis", "olympics"), boost=4.0))
        politics = personalize_ranking(
            ranking, UserProfile(user_id="p", keywords=("elections",), boost=4.0))
        assert sports[0].pair != politics[0].pair


class TestPersonalizationEngine:
    def test_register_and_lookup(self):
        engine = PersonalizationEngine()
        engine.register(UserProfile(user_id="alice"))
        assert engine.users() == ["alice"]
        assert engine.profile("alice").user_id == "alice"
        assert len(engine) == 1

    def test_unknown_user_raises(self):
        with pytest.raises(KeyError):
            PersonalizationEngine().profile("nobody")

    def test_unregister(self):
        engine = PersonalizationEngine()
        engine.register(UserProfile(user_id="alice"))
        engine.unregister("alice")
        assert engine.users() == []
        engine.unregister("alice")  # idempotent

    def test_personalize_all(self):
        engine = PersonalizationEngine()
        engine.register(UserProfile(user_id="alice", keywords=("tennis",)))
        engine.register(UserProfile(user_id="bob", keywords=("elections",)))
        ranking = ranking_from([(("tennis", "olympics"), 0.5),
                                (("elections", "congress"), 0.5)])
        views = engine.personalize_all(ranking)
        assert set(views) == {"alice", "bob"}
        assert views["alice"][0].pair == TagPair("olympics", "tennis")
        assert views["bob"][0].pair == TagPair("congress", "elections")

    def test_reregistering_replaces_profile(self):
        engine = PersonalizationEngine()
        engine.register(UserProfile(user_id="alice", keywords=("a",)))
        engine.register(UserProfile(user_id="alice", keywords=("b",)))
        assert engine.profile("alice").keywords == ("b",)
