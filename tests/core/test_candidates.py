"""Tests for the incremental seed-postings candidate index."""

import pytest

from repro.core.candidates import CandidateIndex
from repro.core.types import TagPair


def pair(a, b):
    return TagPair(a, b)


class TestMaintenance:
    def test_add_and_count(self):
        index = CandidateIndex()
        index.add(pair("a", "b"))
        index.add(pair("a", "b"))
        assert index.count(pair("a", "b")) == 2
        assert len(index) == 1
        assert pair("a", "b") in index

    def test_discard_decrements_and_drops_dead_pairs(self):
        index = CandidateIndex()
        index.add(pair("a", "b"))
        index.add(pair("a", "b"))
        index.discard(pair("a", "b"))
        assert index.count(pair("a", "b")) == 1
        index.discard(pair("a", "b"))
        assert index.count(pair("a", "b")) == 0
        assert pair("a", "b") not in index
        assert len(index) == 0

    def test_discard_of_unknown_pair_is_a_noop(self):
        index = CandidateIndex()
        index.discard(pair("a", "b"))
        assert len(index) == 0

    def test_postings_track_both_tags(self):
        index = CandidateIndex()
        index.add(pair("a", "b"))
        index.add(pair("a", "c"))
        assert index.pairs_for("a") == {pair("a", "b"), pair("a", "c")}
        assert index.pairs_for("b") == {pair("a", "b")}
        assert index.pairs_for("missing") == frozenset()

    def test_postings_cleaned_up_after_removal(self):
        index = CandidateIndex()
        index.add(pair("a", "b"))
        index.discard(pair("a", "b"))
        assert index.pairs_for("a") == frozenset()
        assert index.pairs_for("b") == frozenset()
        assert index._postings == {}

    def test_batch_updates_match_single_updates(self):
        pairs = [pair("a", "b"), pair("a", "b"), pair("a", "c"), pair("b", "c")]
        singles = CandidateIndex()
        for p in pairs:
            singles.add(p)
        batched = CandidateIndex()
        batched.add_many(pairs)
        assert dict(singles.items()) == dict(batched.items())

        for p in pairs[:2]:
            singles.discard(p)
        batched.remove_many(pairs[:2])
        assert dict(singles.items()) == dict(batched.items())

    def test_items_lists_each_pair_once(self):
        index = CandidateIndex()
        index.add_many([pair("a", "b"), pair("b", "c"), pair("a", "b")])
        assert sorted(index.items()) == [(pair("a", "b"), 2), (pair("b", "c"), 1)]

    def test_min_support_validation(self):
        with pytest.raises(ValueError):
            CandidateIndex(min_support=0)


class TestCandidates:
    def test_union_over_seed_postings(self):
        index = CandidateIndex()
        index.add_many([pair("seed", "x"), pair("y", "z")])
        assert index.candidates(["seed"]) == [(pair("seed", "x"), "seed")]

    def test_min_support_filters_weak_pairs(self):
        index = CandidateIndex(min_support=2)
        index.add_many([pair("s", "x"), pair("s", "y"), pair("s", "y")])
        assert index.candidates(["s"]) == [(pair("s", "y"), "s")]

    def test_no_seeds_no_candidates(self):
        index = CandidateIndex()
        index.add(pair("a", "b"))
        assert index.candidates([]) == []
        assert index.iter_candidates([]) == []

    def test_double_seed_pair_reported_once_with_smaller_trigger(self):
        index = CandidateIndex()
        index.add(pair("a", "b"))
        assert index.candidates(["a", "b"]) == [(pair("a", "b"), "a")]

    def test_matches_reference_scan(self):
        index = CandidateIndex(min_support=2)
        index.add_many([
            pair("a", "b"), pair("a", "b"), pair("a", "c"),
            pair("b", "c"), pair("b", "c"), pair("c", "d"), pair("c", "d"),
        ])
        for seeds in ([], ["a"], ["a", "c"], ["d"], ["a", "b", "c", "d"]):
            assert index.candidates(seeds) == index.scan_candidates(seeds)

    def test_iter_candidates_carries_counts(self):
        index = CandidateIndex()
        index.add_many([pair("s", "x"), pair("s", "x"), pair("s", "y")])
        triples = sorted(index.iter_candidates(["s"]))
        assert triples == [(pair("s", "x"), "s", 2), (pair("s", "y"), "s", 1)]
