"""Two-tier sketch-backed tracking through the single engine.

Pins the tentpole's contract: ``promote_support`` of 0 or 1 degenerates
bit-identically to the exact engine, a nonzero threshold bounds the
exact tier's live-pair population, and the tier surfaces through
``runtime_info`` and the metrics registry.
"""

import pytest

from repro.core.config import live_stream_config
from repro.core.engine import EnBlogue, make_sketch_tier
from repro.datasets.twitter import TweetStreamGenerator
from repro.observability import Observability


def stream(hours=12, tweets_per_hour=40, seed=11):
    corpus, _ = TweetStreamGenerator(
        hours=hours, tweets_per_hour=tweets_per_hour, seed=seed
    ).generate()
    return list(corpus)


def ranking_signature(engine):
    return [
        [(topic.pair, topic.score) for topic in ranking.topics]
        for ranking in engine.ranking_history()
    ]


def replay(config, docs, **kwargs):
    engine = EnBlogue(config, **kwargs)
    for document in docs:
        engine.process(document)
    engine.evaluate_now()
    return engine


BASE = live_stream_config()


class TestDegenerateThresholds:
    def test_no_tier_below_promote_support_two(self):
        assert make_sketch_tier(BASE) is None
        assert make_sketch_tier(
            BASE.with_overrides(tracking="tiered", promote_support=0)
        ) is None
        assert make_sketch_tier(
            BASE.with_overrides(tracking="tiered", promote_support=1)
        ) is None
        assert make_sketch_tier(
            BASE.with_overrides(tracking="tiered", promote_support=2)
        ) is not None

    @pytest.mark.parametrize("threshold", [0, 1])
    def test_rankings_bit_identical_to_exact(self, threshold):
        docs = stream()
        exact = replay(BASE, docs)
        tiered = replay(
            BASE.with_overrides(
                tracking="tiered", promote_support=threshold
            ),
            docs,
        )
        assert ranking_signature(tiered) == ranking_signature(exact)
        assert tiered.tracker.snapshot() == exact.tracker.snapshot()


class TestNonzeroThreshold:
    def test_live_pairs_reduced(self):
        docs = stream()
        exact = replay(BASE, docs)
        tiered = replay(
            BASE.with_overrides(tracking="tiered", promote_support=4), docs
        )
        assert len(tiered.tracker.candidate_index) < len(
            exact.tracker.candidate_index
        )
        tier = tiered.tracker.tier
        assert tier is not None
        assert tier.filtered > 0
        assert tier.promotions > 0

    def test_promoted_pairs_still_rank(self):
        docs = stream()
        tiered = replay(
            BASE.with_overrides(tracking="tiered", promote_support=3), docs
        )
        assert any(ranking.topics for ranking in tiered.ranking_history())


class TestSurface:
    def test_runtime_info_names_the_mode(self):
        exact = EnBlogue(BASE)
        info = exact.runtime_info()
        assert info["tracking"] == "exact"
        assert info["promote_support"] == 0

        tiered = EnBlogue(
            BASE.with_overrides(tracking="tiered", promote_support=3)
        )
        info = tiered.runtime_info()
        assert info["tracking"] == "tiered"
        assert info["promote_support"] == 3

    def test_tier_gauges_live_on_the_registry(self):
        observability = Observability()
        engine = EnBlogue(
            BASE.with_overrides(tracking="tiered", promote_support=3),
            observability=observability,
        )
        for document in stream(hours=6):
            engine.process(document)
        registry = observability.registry
        tier = engine.tracker.tier
        assert registry.gauge(
            "repro_tracking_sketched_keys"
        ).value == tier.tracked_keys
        assert registry.gauge(
            "repro_tracking_filtered_occurrences"
        ).value == tier.filtered
        assert registry.gauge(
            "repro_tracking_promotions"
        ).value == tier.promotions

    def test_describe_carries_the_mode(self):
        config = BASE.with_overrides(tracking="tiered", promote_support=5)
        described = config.describe()
        assert described["tracking"] == "tiered"
        assert described["promote_support"] == 5
