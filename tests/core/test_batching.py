"""Batch-path equivalence and bounded-history behaviour of the engine."""

import pytest

from repro.core.config import EnBlogueConfig
from repro.core.engine import EnBlogue
from repro.core.tracker import CorrelationTracker
from repro.datasets.documents import Document
from repro.datasets.synthetic import figure1_stream
from repro.streams.item import StreamItem

HOUR = 3600.0


def config(**overrides):
    defaults = dict(
        window_horizon=6 * HOUR,
        evaluation_interval=HOUR,
        num_seeds=10,
        min_seed_count=1,
        min_pair_support=1,
        min_history=2,
        predictor="moving_average",
        predictor_window=3,
    )
    defaults.update(overrides)
    return EnBlogueConfig(**defaults)


def doc(t, tags):
    return Document(timestamp=float(t), doc_id=f"doc-{t}", tags=frozenset(tags))


def ranking_signature(engine):
    return [
        (ranking.timestamp, [(topic.pair, topic.score) for topic in ranking])
        for ranking in engine.ranking_history()
    ]


class TestProcessBatchEquivalence:
    def test_batch_rankings_identical_to_single_path_on_figure1(self):
        corpus, _ = figure1_stream(num_steps=45, shift_start=25, shift_length=12)
        single = EnBlogue(config())
        single.process_many(corpus)
        batch = EnBlogue(config())
        batch.process_batch(corpus)
        assert ranking_signature(single) == ranking_signature(batch)
        assert single.documents_processed == batch.documents_processed
        assert single.current_seeds == batch.current_seeds

    def test_chunked_batches_match_one_big_batch(self):
        corpus, _ = figure1_stream(num_steps=30, shift_start=15, shift_length=8)
        documents = list(corpus)
        whole = EnBlogue(config())
        whole.process_batch(documents)
        chunked = EnBlogue(config())
        for start in range(0, len(documents), 17):
            chunked.process_batch(documents[start:start + 17])
        assert ranking_signature(whole) == ranking_signature(chunked)

    def test_batch_returns_every_ranking_produced(self):
        engine = EnBlogue(config())
        produced = engine.process_batch([
            doc(0, ["a", "b"]),
            doc(2.5 * HOUR, ["a", "b"]),
            doc(3.5 * HOUR, ["a", "c"]),
        ])
        # Boundaries at 1h, 2h (crossed by the second doc) and 3h.
        assert len(produced) == 3
        assert [r.timestamp for r in produced] == [HOUR, 2 * HOUR, 3 * HOUR]
        assert engine.ranking_history() == produced

    def test_empty_batch_is_a_noop(self):
        engine = EnBlogue(config())
        assert engine.process_batch([]) == []
        assert engine.documents_processed == 0

    def test_out_of_order_batch_rejected(self):
        engine = EnBlogue(config())
        with pytest.raises(ValueError):
            engine.process_batch([doc(10, ["a"]), doc(5, ["b"])])


class TestEvaluationCatchUp:
    def test_quiet_multi_interval_gap_single_path(self):
        engine = EnBlogue(config())
        engine.process(doc(0, ["a", "b"]))
        ranking = engine.process(doc(7 * HOUR, ["a", "b"]))
        # Boundaries 1h..7h were all crossed by the jump; one ranking each.
        assert len(engine.ranking_history()) == 7
        assert ranking is engine.ranking_history()[-1]
        assert [r.timestamp for r in engine.ranking_history()] == [
            i * HOUR for i in range(1, 8)
        ]

    def test_quiet_multi_interval_gap_inside_batch(self):
        single = EnBlogue(config())
        batch = EnBlogue(config())
        documents = [doc(0, ["a", "b"]), doc(7 * HOUR, ["a", "b"]),
                     doc(7.5 * HOUR, ["a", "c"])]
        single.process_many(documents)
        batch.process_batch(documents)
        assert ranking_signature(single) == ranking_signature(batch)
        assert len(batch.ranking_history()) == 7

    def test_gap_straddling_two_batches(self):
        engine = EnBlogue(config())
        engine.process_batch([doc(0, ["a", "b"])])
        engine.process_batch([doc(5 * HOUR, ["a", "b"])])
        assert len(engine.ranking_history()) == 5


class TestTrackerObserveMany:
    def test_observe_many_state_matches_sequential_observes(self):
        sequential = CorrelationTracker(window_horizon=10 * HOUR,
                                        min_pair_support=1, track_usage=True)
        batched = CorrelationTracker(window_horizon=10 * HOUR,
                                     min_pair_support=1, track_usage=True)
        observations = [
            (0.0, ["a", "b"], ["X"]),
            (1.0, ["b", "c"], []),
            (11 * HOUR, ["a", "c"], ["Y"]),
        ]
        for timestamp, tags, entities in observations:
            sequential.observe(timestamp, tags, entities)
        assert batched.observe_many(observations) == 3

        assert sequential.documents_seen == batched.documents_seen
        assert sequential.latest_timestamp == batched.latest_timestamp
        assert sequential.document_count() == batched.document_count()
        assert sequential.tag_window.snapshot() == batched.tag_window.snapshot()
        assert dict(sequential.candidate_index.items()) \
            == dict(batched.candidate_index.items())
        assert sequential._usage == batched._usage

    def test_observe_many_empty_iterable(self):
        tracker = CorrelationTracker(window_horizon=10.0)
        assert tracker.observe_many([]) == 0
        assert tracker.documents_seen == 0

    def test_observe_many_rejects_out_of_order(self):
        tracker = CorrelationTracker(window_horizon=10.0)
        with pytest.raises(ValueError):
            tracker.observe_many([(5.0, ["a"], ()), (1.0, ["b"], ())])

    def test_rejected_batch_leaves_tracker_unchanged(self):
        tracker = CorrelationTracker(window_horizon=10.0, track_usage=True)
        with pytest.raises(ValueError):
            tracker.observe_many([(5.0, ["a", "b"], ()), (1.0, ["x"], ())])
        assert tracker.documents_seen == 0
        assert tracker.document_count() == 0
        assert len(tracker.candidate_index) == 0
        assert tracker._usage == {}
        # The tracker stays fully usable after the rejection.
        tracker.observe(20.0, ["c", "d"])
        assert tracker.document_count() == 1


class TestRankingHistoryBound:
    def test_unbounded_by_default(self):
        engine = EnBlogue(config())
        engine.process(doc(0, ["a", "b"]))
        engine.process(doc(12 * HOUR, ["a", "b"]))
        assert len(engine.ranking_history()) == 12

    def test_max_ranking_history_bounds_retention(self):
        engine = EnBlogue(config(max_ranking_history=4))
        engine.process(doc(0, ["a", "b"]))
        engine.process(doc(12 * HOUR, ["a", "b"]))
        history = engine.ranking_history()
        assert len(history) == 4
        # The newest rankings are the ones retained.
        assert [r.timestamp for r in history] == [
            i * HOUR for i in range(9, 13)
        ]
        assert engine.current_ranking() is history[-1]

    def test_bound_applies_on_batch_path(self):
        engine = EnBlogue(config(max_ranking_history=2))
        engine.process_batch([doc(0, ["a", "b"]), doc(6 * HOUR, ["a", "b"])])
        assert len(engine.ranking_history()) == 2

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            config(max_ranking_history=0)


class TestBatchSink:
    def test_as_sink_routes_batches_to_process_batch(self):
        engine = EnBlogue(config())
        sink = engine.as_sink()
        items = [
            StreamItem(timestamp=0.0, doc_id="d1", tags={"a", "b"}),
            StreamItem(timestamp=2 * HOUR, doc_id="d2", tags={"a", "b"}),
        ]
        sink.push_batch(items)
        assert engine.documents_processed == 2
        assert len(engine.ranking_history()) == 2

    def test_sink_single_and_batch_paths_agree(self):
        corpus, _ = figure1_stream(num_steps=20, shift_start=10, shift_length=6)
        items = [
            StreamItem(timestamp=d.timestamp, doc_id=d.doc_id, tags=d.tags)
            for d in corpus
        ]
        single = EnBlogue(config())
        sink = single.as_sink()
        for item in items:
            sink.push(item)
        batch = EnBlogue(config())
        batch.as_sink().push_batch(items)
        assert ranking_signature(single) == ranking_signature(batch)
