"""Edge-case behaviour of the EnBlogue engine."""

import pytest

from repro.core.config import EnBlogueConfig
from repro.core.engine import EnBlogue
from repro.datasets.documents import Document

HOUR = 3600.0


def config(**overrides):
    defaults = dict(
        window_horizon=6 * HOUR, evaluation_interval=HOUR,
        num_seeds=10, min_seed_count=1, min_pair_support=1, min_history=2,
        predictor_window=3,
    )
    defaults.update(overrides)
    return EnBlogueConfig(**defaults)


def doc(t, tags, doc_id=None, text=""):
    return Document(timestamp=float(t), doc_id=doc_id or f"doc-{t}",
                    tags=frozenset(tags), text=text)


class TestDegenerateDocuments:
    def test_documents_without_tags_are_ingested_harmlessly(self):
        engine = EnBlogue(config())
        engine.process(doc(0, []))
        engine.process(doc(1, []))
        assert engine.documents_processed == 2
        ranking = engine.evaluate_now()
        assert len(ranking) == 0

    def test_single_tag_documents_produce_no_pairs(self):
        engine = EnBlogue(config())
        for t in range(5):
            engine.process(doc(t * 600, ["solo"]))
        ranking = engine.evaluate_now()
        assert len(ranking) == 0
        assert engine.tracker.tag_count("solo") == 5

    def test_duplicate_timestamps_are_accepted(self):
        engine = EnBlogue(config())
        engine.process(doc(100, ["a", "b"], doc_id="one"))
        engine.process(doc(100, ["a", "c"], doc_id="two"))
        assert engine.documents_processed == 2

    def test_out_of_order_documents_are_rejected(self):
        engine = EnBlogue(config())
        engine.process(doc(1000, ["a", "b"]))
        with pytest.raises(ValueError):
            engine.process(doc(10, ["a", "b"], doc_id="late"))

    def test_empty_string_tags_are_dropped(self):
        engine = EnBlogue(config())
        engine.process(doc(0, ["", "real"]))
        assert engine.tracker.tag_count("real") == 1
        assert engine.tracker.tag_count("") == 0

    def test_whitespace_only_text_without_tagger_is_fine(self):
        engine = EnBlogue(config())
        engine.process(doc(0, ["a", "b"], text="   "))
        assert engine.documents_processed == 1


class TestEvaluationBoundaries:
    def test_no_seeds_when_all_tags_below_min_count(self):
        engine = EnBlogue(config(min_seed_count=5))
        engine.process(doc(0, ["a", "b"]))
        engine.process(doc(2 * HOUR, ["a", "b"]))
        assert engine.current_seeds == []
        # Without seeds there are no candidate pairs and no topics.
        assert all(len(r) == 0 for r in engine.ranking_history())

    def test_evaluate_now_does_not_disturb_periodic_schedule(self):
        engine = EnBlogue(config())
        engine.process(doc(0, ["a", "b"]))
        engine.evaluate_now()
        before = len(engine.ranking_history())
        engine.process(doc(HOUR + 1, ["a", "b"]))
        assert len(engine.ranking_history()) == before + 1

    def test_long_quiet_gap_produces_one_ranking_per_interval(self):
        engine = EnBlogue(config())
        engine.process(doc(0, ["a", "b"]))
        engine.process(doc(5 * HOUR + 1, ["a", "b"]))
        # Boundaries at 1h..5h after the first document.
        assert len(engine.ranking_history()) == 5
        timestamps = [r.timestamp for r in engine.ranking_history()]
        assert timestamps == sorted(timestamps)

    def test_rankings_after_window_fully_expires(self):
        engine = EnBlogue(config())
        engine.process(doc(0, ["a", "b"]))
        engine.process(doc(0.5 * HOUR, ["a", "b"]))
        # Jump far beyond the window: all live state should have expired and
        # evaluation must still work (producing empty/low-score rankings).
        engine.process(doc(48 * HOUR, ["c", "d"]))
        assert engine.tracker.tag_count("a") == 0
        final = engine.evaluate_now()
        assert all(topic.score >= 0 for topic in final)


class TestScoreSemantics:
    def test_scores_decay_when_a_topic_goes_quiet(self):
        engine = EnBlogue(config(decay_half_life=2 * HOUR))
        # Hours 0-5: the tags co-occur at a low, steady rate (1 of 5 docs per
        # hour); hours 6-8: they suddenly co-occur in every document, which is
        # the shift being scored.
        for hour in range(9):
            together = hour >= 6
            if together:
                hour_docs = [["a", "b"]] * 5
            else:
                hour_docs = [["a", "b"], ["a", "x"], ["a", "x"], ["b", "y"], ["b", "y"]]
            for i, tags in enumerate(hour_docs):
                engine.process(doc(hour * HOUR + i, tags, doc_id=f"d{hour}-{i}"))
        peak = engine.topic_score("a", "b")
        assert peak > 0
        # Then the topic goes completely quiet for a day.
        engine.process(doc(30 * HOUR, ["x", "y"]))
        decayed = engine.topic_score("a", "b")
        assert decayed < peak / 4

    def test_topic_score_for_unknown_pair_is_zero(self):
        engine = EnBlogue(config())
        engine.process(doc(0, ["a", "b"]))
        assert engine.topic_score("never", "seen") == 0.0
