"""Tests for the archive explorer (range-based show case 1 queries)."""

import pytest

from repro.core.explorer import ArchiveExplorer, RangeShift
from repro.core.types import TagPair
from repro.datasets.documents import Document
from repro.datasets.synthetic import figure1_stream

HOUR = 3600.0


def doc(t, tags):
    return Document(timestamp=float(t), doc_id=f"d{t}", tags=frozenset(tags))


@pytest.fixture(scope="module")
def figure1_explorer():
    corpus, schedule = figure1_stream(num_steps=50, shift_start=30, shift_length=12)
    explorer = ArchiveExplorer(partition_length=HOUR, min_pair_support=2)
    explorer.index_many(corpus)
    return explorer, schedule


class TestIndexing:
    def test_counts_and_time_range(self, figure1_explorer):
        explorer, _ = figure1_explorer
        assert explorer.documents_indexed > 0
        start, end = explorer.time_range()
        assert start < end

    def test_time_range_without_documents_raises(self):
        with pytest.raises(ValueError):
            ArchiveExplorer(partition_length=HOUR).time_range()

    def test_accepts_dataset_documents_and_lowercases_tags(self):
        explorer = ArchiveExplorer(partition_length=10.0)
        explorer.index(doc(1, ["Politics", "Volcano"]))
        assert explorer.top_tags(0.0, 10.0, k=5) == [("politics", 1), ("volcano", 1)]

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ArchiveExplorer(partition_length=HOUR, num_seeds=0)
        with pytest.raises(ValueError):
            ArchiveExplorer(partition_length=HOUR, min_pair_support=0)


class TestRangeRanking:
    def test_shift_window_ranks_the_emergent_pair_first(self, figure1_explorer):
        explorer, schedule = figure1_explorer
        event = schedule.events()[0]
        ranking = explorer.rank(event.start, event.end)
        assert len(ranking) > 0
        assert ranking[0].pair == TagPair.from_tuple(event.pair)

    def test_pre_shift_window_does_not_rank_the_pair_first(self, figure1_explorer):
        explorer, schedule = figure1_explorer
        event = schedule.events()[0]
        pair = TagPair.from_tuple(event.pair)
        quiet = explorer.rank(10 * HOUR, 25 * HOUR)
        position = quiet.position_of(pair)
        assert position is None or position > 0

    def test_explicit_reference_window(self, figure1_explorer):
        explorer, schedule = figure1_explorer
        event = schedule.events()[0]
        ranking = explorer.rank(event.start, event.end,
                                reference_start=0.0, reference_end=event.start)
        assert ranking.contains_pair(TagPair.from_tuple(event.pair))

    def test_correlation_accessor(self, figure1_explorer):
        explorer, schedule = figure1_explorer
        event = schedule.events()[0]
        pair = TagPair.from_tuple(event.pair)
        during = explorer.correlation(pair, event.start, event.end)
        before = explorer.correlation(pair, 0.0, event.start)
        assert during > before

    def test_rank_validation(self, figure1_explorer):
        explorer, _ = figure1_explorer
        with pytest.raises(ValueError):
            explorer.rank(10.0, 5.0)
        with pytest.raises(ValueError):
            explorer.rank(0.0, 10.0, top_k=0)

    def test_perennial_pairs_are_not_emergent(self):
        # A pair that is equally correlated in both windows scores zero.
        explorer = ArchiveExplorer(partition_length=10.0, min_pair_support=1)
        for t in range(40):
            explorer.index(doc(t, ["always", "together"]))
        ranking = explorer.rank(200.0, 400.0)
        assert not ranking.contains_pair(TagPair("always", "together"))


class TestDrillDown:
    def test_documents_for_detected_pair(self, figure1_explorer):
        explorer, schedule = figure1_explorer
        pair = TagPair.from_tuple(schedule.events()[0].pair)
        documents = explorer.documents_for(pair, limit=5)
        assert documents
        assert all(set(pair.as_tuple()) <= set(item.tags) for item in documents)

    def test_drill_down_disabled(self):
        explorer = ArchiveExplorer(partition_length=HOUR, keep_documents=False)
        explorer.index(doc(1, ["a", "b"]))
        with pytest.raises(RuntimeError):
            explorer.documents_for(TagPair("a", "b"))


class TestRangeShift:
    def test_shift_is_clamped_at_zero(self):
        shift = RangeShift(pair=TagPair("a", "b"), correlation=0.2,
                           reference_correlation=0.5)
        assert shift.shift == 0.0
        rising = RangeShift(pair=TagPair("a", "b"), correlation=0.5,
                            reference_correlation=0.2)
        assert rising.shift == pytest.approx(0.3)
