"""Unit tests for the vectorized evaluation hot path's switches and errors.

The bit-identity of the kernels themselves is property-tested in
``tests/property/test_vectorized_properties.py``; here we pin the
dispatch contract — auto-detection, the ``REPRO_DISABLE_VECTORIZED``
environment switch, kernel-less measures falling back to scalar — and
the error paths (batched validation raising the scalar pair-named
message, stale timestamps rejected).
"""

import pytest

np = pytest.importorskip("numpy")

from repro.core.config import EnBlogueConfig
from repro.core.correlation import (
    JaccardCorrelation,
    KlDivergenceCorrelation,
    PmiCorrelation,
)
from repro.core.engine import EnBlogue
from repro.core.ranking import RankingBuilder
from repro.core.shift import ShiftDetector
from repro.core.tracker import CorrelationTracker
from repro.core.types import TagPair
from repro.core.vectorized import (
    DISABLE_ENV_VAR,
    NUMPY_AVAILABLE,
    VECTORIZED_PREDICTOR_NAMES,
    config_vectorizes,
    make_fused_evaluator,
    measure_candidates,
    measure_supported,
    sampling_supported,
    validate_pair_counts,
)

pytestmark = pytest.mark.skipif(
    not NUMPY_AVAILABLE, reason="vectorized path requires numpy"
)

HOUR = 3600.0


def config(**overrides):
    defaults = dict(
        window_horizon=6 * HOUR,
        evaluation_interval=HOUR,
        num_seeds=10,
        min_seed_count=1,
        min_pair_support=1,
        min_history=2,
        predictor="moving_average",
        predictor_window=3,
    )
    defaults.update(overrides)
    return EnBlogueConfig(**defaults)


def parts(tracker=None):
    tracker = tracker or CorrelationTracker(window_horizon=HOUR)
    return tracker, ShiftDetector(), RankingBuilder()


class TestDispatchSwitches:
    def test_auto_detection_builds_the_evaluator(self, monkeypatch):
        monkeypatch.delenv(DISABLE_ENV_VAR, raising=False)
        assert make_fused_evaluator(*parts()) is not None

    def test_enabled_false_forces_scalar(self):
        assert make_fused_evaluator(*parts(), enabled=False) is None

    def test_env_var_disables_auto_detection(self, monkeypatch):
        monkeypatch.setenv(DISABLE_ENV_VAR, "1")
        assert make_fused_evaluator(*parts()) is None
        assert not sampling_supported(JaccardCorrelation())
        assert not config_vectorizes(config())

    def test_enabled_true_overrides_the_env_var(self, monkeypatch):
        monkeypatch.setenv(DISABLE_ENV_VAR, "1")
        assert make_fused_evaluator(*parts(), enabled=True) is not None
        assert sampling_supported(JaccardCorrelation(), enabled=True)

    def test_kernel_less_measure_falls_back_to_scalar(self):
        assert not measure_supported(KlDivergenceCorrelation())
        tracker = CorrelationTracker(
            window_horizon=HOUR, measure=KlDivergenceCorrelation(),
            track_usage=True,
        )
        assert make_fused_evaluator(*parts(tracker)) is None
        assert tracker.sampling_path == "scalar"

    def test_subclassed_measure_falls_back_to_scalar(self):
        # A subclass may override value(); the exact-type kernel registry
        # must not silently apply the parent's kernel.
        class Tweaked(JaccardCorrelation):
            def value(self, counts, usage_a=None, usage_b=None):
                return 0.5

        assert not measure_supported(Tweaked())
        assert make_fused_evaluator(
            *parts(CorrelationTracker(window_horizon=HOUR, measure=Tweaked()))
        ) is None

    def test_config_vectorizes_checks_measure_and_predictor(self, monkeypatch):
        monkeypatch.delenv(DISABLE_ENV_VAR, raising=False)
        assert config_vectorizes(config())
        assert not config_vectorizes(config(correlation_measure="kl"))
        assert "moving_average" in VECTORIZED_PREDICTOR_NAMES

    def test_engine_reports_its_evaluation_path(self, monkeypatch):
        monkeypatch.delenv(DISABLE_ENV_VAR, raising=False)
        assert EnBlogue(config()).evaluation_path == "vectorized"
        assert EnBlogue(config(), vectorize=False).evaluation_path == "scalar"
        monkeypatch.setenv(DISABLE_ENV_VAR, "1")
        assert EnBlogue(config()).evaluation_path == "scalar"

    def test_engine_runtime_info(self):
        info = EnBlogue(config()).runtime_info()
        assert info["engine"] == "single"
        assert info["backend"] == "inline"
        assert info["shards"] == 1
        assert info["evaluation_path"] in ("vectorized", "scalar")


class TestBatchedValidation:
    def test_bad_counts_raise_the_scalar_pair_named_message(self):
        candidates = [
            (TagPair("a", "b"), "a", 3),
            (TagPair("a", "c"), "a", 2),
        ]
        with pytest.raises(ValueError,
                           match=r"either tag count for pair \(a, c\)"):
            validate_pair_counts(
                candidates,
                np.array([3, 1], dtype=np.int64),
                np.array([4, 1], dtype=np.int64),
                np.array([2, 2], dtype=np.int64),  # second exceeds both
                10,
            )

    def test_negative_total_raises(self):
        candidates = [(TagPair("a", "b"), "a", 1)]
        with pytest.raises(ValueError, match=r"for pair \(a, b\)"):
            validate_pair_counts(
                candidates,
                np.array([0], dtype=np.int64),
                np.array([0], dtype=np.int64),
                np.array([0], dtype=np.int64),
                -1,
            )

    def test_valid_counts_pass(self):
        candidates = [(TagPair("a", "b"), "a", 2)]
        validate_pair_counts(
            candidates,
            np.array([3], dtype=np.int64),
            np.array([4], dtype=np.int64),
            np.array([2], dtype=np.int64),
            10,
        )

    def test_kernel_less_measure_rejected_by_measure_candidates(self):
        with pytest.raises(ValueError, match="no vectorized kernel"):
            measure_candidates(
                KlDivergenceCorrelation(),
                np.array([1], dtype=np.int64),
                np.array([1], dtype=np.int64),
                np.array([1], dtype=np.int64),
                10,
            )

    def test_batched_values_match_scalar_measure(self):
        measure = PmiCorrelation()
        count_a = np.array([5, 3, 7], dtype=np.int64)
        count_b = np.array([4, 3, 2], dtype=np.int64)
        count_both = np.array([2, 0, 2], dtype=np.int64)
        values = measure_candidates(measure, count_a, count_b, count_both, 20)
        from repro.core.correlation import PairCounts
        for index in range(3):
            scalar = measure.value(PairCounts(
                count_a=int(count_a[index]),
                count_b=int(count_b[index]),
                count_both=int(count_both[index]),
                total_documents=20,
            ))
            assert float(values[index]) == scalar


class TestStaleEvaluationRejected:
    def test_evaluating_before_the_stream_head_raises(self):
        # Same guard (and wording) as the scalar path: stream time is
        # monotone, so a backwards evaluation fails at the tracker.
        engine = EnBlogue(config(), vectorize=True)
        assert engine.evaluation_path == "vectorized"
        from repro.datasets.documents import Document
        for t in range(8):
            engine.process(Document(
                timestamp=t * HOUR, doc_id=f"d{t}",
                tags=frozenset({"a", "b"}),
            ))
        with pytest.raises(ValueError, match="cannot advance backwards"):
            engine.evaluate_now(0.0)

    def test_scores_from_the_future_raise_in_the_batch(self):
        # A decayed maximum stamped *after* the evaluation timestamp (a
        # corrupted restore) must fail loudly, exactly like the scalar
        # DecayedMaximum would, instead of decaying by exp(+x).
        engine = EnBlogue(config(), vectorize=True)
        from repro.datasets.documents import Document
        for t in range(8):
            engine.process(Document(
                timestamp=t * HOUR, doc_id=f"d{t}",
                tags=frozenset({"a", "b", "c"}),
            ))
        future = 100 * HOUR
        engine.detector.record_scores(
            future, [(TagPair("a", "b"), 0.25)]
        )
        with pytest.raises(ValueError, match="cannot evaluate in the past"):
            engine.evaluate_now(9 * HOUR)
