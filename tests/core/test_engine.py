"""Tests for the EnBlogue façade."""

import pytest

from repro.core.config import EnBlogueConfig
from repro.core.engine import EnBlogue
from repro.core.personalization import UserProfile
from repro.core.types import TagPair
from repro.datasets.documents import Document
from repro.datasets.synthetic import figure1_stream
from repro.entity.knowledge_base import KnowledgeBase
from repro.entity.tagger import EntityTagger
from repro.streams.item import StreamItem

HOUR = 3600.0


def config(**overrides):
    defaults = dict(
        window_horizon=6 * HOUR,
        evaluation_interval=HOUR,
        num_seeds=10,
        min_seed_count=1,
        min_pair_support=1,
        min_history=2,
        predictor="moving_average",
        predictor_window=3,
    )
    defaults.update(overrides)
    return EnBlogueConfig(**defaults)


def doc(t, tags, text=""):
    return Document(timestamp=float(t), doc_id=f"doc-{t}", tags=frozenset(tags), text=text)


class TestProcessing:
    def test_counts_processed_documents(self):
        engine = EnBlogue(config())
        engine.process(doc(0, ["a", "b"]))
        engine.process(doc(10, ["a"]))
        assert engine.documents_processed == 2

    def test_accepts_stream_items_and_documents(self):
        engine = EnBlogue(config())
        engine.process(StreamItem(timestamp=1.0, doc_id="s1", tags={"a", "b"}))
        engine.process(doc(2, ["a", "c"]))
        assert engine.documents_processed == 2

    def test_no_ranking_before_first_evaluation_boundary(self):
        engine = EnBlogue(config())
        assert engine.process(doc(0, ["a", "b"])) is None
        assert engine.current_ranking() is None

    def test_ranking_produced_when_interval_crossed(self):
        engine = EnBlogue(config())
        engine.process(doc(0, ["a", "b"]))
        ranking = engine.process(doc(HOUR + 1, ["a", "b"]))
        assert ranking is not None
        assert engine.current_ranking() is ranking

    def test_quiet_stretch_catches_up_on_evaluations(self):
        engine = EnBlogue(config())
        engine.process(doc(0, ["a", "b"]))
        engine.process(doc(10 * HOUR, ["a", "b"]))
        # One ranking per crossed boundary.
        assert len(engine.ranking_history()) == 10

    def test_tags_are_lowercased(self):
        engine = EnBlogue(config())
        engine.process(doc(0, ["Politics", "VOLCANO"]))
        assert engine.tracker.tag_count("politics") == 1
        assert engine.tracker.tag_count("volcano") == 1

    def test_evaluate_now_without_documents_raises(self):
        with pytest.raises(ValueError):
            EnBlogue(config()).evaluate_now()

    def test_evaluate_now_produces_ranking(self):
        engine = EnBlogue(config())
        engine.process(doc(0, ["a", "b"]))
        ranking = engine.evaluate_now()
        assert ranking.timestamp == 0.0


class TestDetection:
    def replay_figure1(self, **config_overrides):
        corpus, schedule = figure1_stream(num_steps=45, shift_start=25, shift_length=12)
        engine = EnBlogue(config(**config_overrides))
        engine.process_many(corpus)
        return engine, schedule

    def test_detects_injected_correlation_shift(self):
        engine, schedule = self.replay_figure1()
        event = schedule.events()[0]
        pair = TagPair.from_tuple(event.pair)
        detected = any(
            ranking.contains_pair(pair) and ranking.position_of(pair) < 5
            for ranking in engine.ranking_history()
            if ranking.timestamp >= event.start
        )
        assert detected

    def test_pair_not_ranked_high_before_the_shift(self):
        engine, schedule = self.replay_figure1()
        event = schedule.events()[0]
        pair = TagPair.from_tuple(event.pair)
        for ranking in engine.ranking_history():
            if ranking.timestamp < event.start:
                position = ranking.position_of(pair)
                assert position is None or position > 0 or ranking[0].score < 0.05

    def test_correlation_history_rises_after_shift(self):
        engine, schedule = self.replay_figure1()
        event = schedule.events()[0]
        history = engine.correlation_history(*event.pair)
        before = [v for t, v in history if t < event.start]
        after = [v for t, v in history if t >= event.start + 3 * HOUR]
        assert after
        assert max(after) > (max(before) if before else 0.0) + 0.1

    def test_topic_score_positive_after_shift(self):
        engine, schedule = self.replay_figure1()
        event = schedule.events()[0]
        assert engine.topic_score(*event.pair) > 0.0

    def test_seeds_are_popular_tags(self):
        engine, _ = self.replay_figure1()
        assert "politics" in engine.current_seeds


class TestEntityIntegration:
    def test_entities_extracted_from_text_when_tagger_given(self):
        kb = KnowledgeBase()
        kb.add_entity("Athens", types=["place"])
        engine = EnBlogue(config(), entity_tagger=EntityTagger(knowledge_base=kb))
        engine.process(doc(0, ["news"], text="the conference is in Athens"))
        assert engine.tracker.tag_count("athens") == 1

    def test_entities_ignored_when_config_disables_them(self):
        kb = KnowledgeBase()
        kb.add_entity("Athens", types=["place"])
        engine = EnBlogue(config(use_entities=False),
                          entity_tagger=EntityTagger(knowledge_base=kb))
        engine.process(doc(0, ["news"], text="the conference is in Athens"))
        assert engine.tracker.tag_count("athens") == 0


class TestIntegrationSurface:
    def test_ranking_listener_called_per_evaluation(self):
        engine = EnBlogue(config())
        received = []
        engine.add_ranking_listener(received.append)
        engine.process(doc(0, ["a", "b"]))
        engine.process(doc(2 * HOUR, ["a", "b"]))
        assert len(received) == len(engine.ranking_history()) > 0

    def test_as_sink_feeds_the_engine(self):
        engine = EnBlogue(config())
        sink = engine.as_sink()
        sink.push(StreamItem(timestamp=0.0, doc_id="d1", tags={"a", "b"}))
        assert engine.documents_processed == 1

    def test_register_user_and_personalized_ranking(self):
        corpus, schedule = figure1_stream(num_steps=45, shift_start=25)
        engine = EnBlogue(config())
        engine.register_user(UserProfile(user_id="volcano-fan", keywords=("volcano",),
                                         boost=5.0))
        engine.process_many(corpus)
        personalized = engine.ranking_for_user("volcano-fan")
        assert personalized is not None
        assert personalized.label == "user:volcano-fan"
        assert any("volcano" in tag for tag in personalized[0].pair.as_tuple())

    def test_ranking_for_user_before_any_ranking_is_none(self):
        engine = EnBlogue(config())
        engine.register_user(UserProfile(user_id="u"))
        assert engine.ranking_for_user("u") is None

    def test_configuration_is_exposed(self):
        cfg = config(name="my-run")
        assert EnBlogue(cfg).config.name == "my-run"
