"""Tests for the correlation measures."""

import pytest

from repro.core.correlation import (
    CosineCorrelation,
    JaccardCorrelation,
    KlDivergenceCorrelation,
    OverlapCorrelation,
    PairCounts,
    PmiCorrelation,
    available_measures,
    make_measure,
)
from repro.core.types import TagPair


def counts(a, b, both, total):
    return PairCounts(count_a=a, count_b=b, count_both=both, total_documents=total)


class TestPairCounts:
    def test_union(self):
        assert counts(10, 5, 3, 100).union == 12

    def test_validation(self):
        with pytest.raises(ValueError):
            counts(-1, 5, 0, 100)
        with pytest.raises(ValueError):
            counts(5, 5, 6, 100)  # intersection larger than either set
        with pytest.raises(ValueError):
            counts(200, 5, 5, 100)  # tag count exceeds documents


class TestJaccard:
    def test_known_value(self):
        assert JaccardCorrelation().value(counts(10, 5, 3, 100)) == pytest.approx(3 / 12)

    def test_identical_sets_give_one(self):
        assert JaccardCorrelation().value(counts(5, 5, 5, 100)) == 1.0

    def test_disjoint_sets_give_zero(self):
        assert JaccardCorrelation().value(counts(5, 5, 0, 100)) == 0.0

    def test_empty_counts_give_zero(self):
        assert JaccardCorrelation().value(counts(0, 0, 0, 0)) == 0.0


class TestOverlap:
    def test_driven_by_smaller_set(self):
        # All of the rare tag's documents also carry the popular tag.
        assert OverlapCorrelation().value(counts(100, 4, 4, 200)) == 1.0

    def test_partial_overlap(self):
        assert OverlapCorrelation().value(counts(100, 10, 5, 200)) == pytest.approx(0.5)

    def test_zero_when_one_tag_absent(self):
        assert OverlapCorrelation().value(counts(10, 0, 0, 100)) == 0.0


class TestCosine:
    def test_known_value(self):
        assert CosineCorrelation().value(counts(9, 4, 3, 100)) == pytest.approx(0.5)

    def test_zero_denominator(self):
        assert CosineCorrelation().value(counts(0, 5, 0, 100)) == 0.0


class TestPmi:
    def test_independent_tags_score_zero(self):
        # p(a,b) == p(a) p(b): PMI is 0.
        value = PmiCorrelation().value(counts(50, 50, 25, 100))
        assert value == pytest.approx(0.0, abs=1e-9)

    def test_perfect_association_scores_one(self):
        value = PmiCorrelation().value(counts(10, 10, 10, 100))
        assert value == pytest.approx(1.0)

    def test_negative_association_clamped_to_zero(self):
        value = PmiCorrelation().value(counts(90, 90, 10, 100))
        assert value == 0.0

    def test_no_cooccurrence_scores_zero(self):
        assert PmiCorrelation().value(counts(10, 10, 0, 100)) == 0.0


class TestKlDivergence:
    def test_identical_usage_distributions_score_high(self):
        usage = {"x": 5, "y": 5}
        measure = KlDivergenceCorrelation()
        assert measure.value(counts(5, 5, 2, 10), usage, dict(usage)) == pytest.approx(1.0)

    def test_different_usage_distributions_score_lower(self):
        measure = KlDivergenceCorrelation()
        similar = measure.value(counts(5, 5, 2, 10), {"x": 5, "y": 5}, {"x": 5, "y": 4})
        different = measure.value(counts(5, 5, 2, 10), {"x": 10}, {"y": 10})
        assert different < similar

    def test_falls_back_to_jaccard_without_usage(self):
        measure = KlDivergenceCorrelation()
        assert measure.value(counts(10, 5, 3, 100)) == pytest.approx(3 / 12)

    def test_smoothing_validation(self):
        with pytest.raises(ValueError):
            KlDivergenceCorrelation(smoothing=0.0)


class TestRegistry:
    def test_all_measures_available(self):
        assert set(available_measures()) == {"jaccard", "overlap", "cosine", "pmi", "kl"}

    def test_make_measure(self):
        assert isinstance(make_measure("jaccard"), JaccardCorrelation)
        assert isinstance(make_measure("kl", smoothing=0.1), KlDivergenceCorrelation)

    def test_unknown_measure_rejected(self):
        with pytest.raises(ValueError):
            make_measure("psychic")

    def test_values_are_bounded_for_set_measures(self):
        for name in ("jaccard", "overlap", "cosine", "pmi"):
            measure = make_measure(name)
            value = measure.value(counts(20, 10, 7, 100))
            assert 0.0 <= value <= 1.0


class TestPairContextInErrors:
    """Validation failures during sampling name the canonical pair."""

    def test_negative_counts_name_the_pair(self):
        with pytest.raises(ValueError,
                           match=r"non-negative for pair \(alpha, zeta\)"):
            PairCounts(count_a=-1, count_b=5, count_both=0,
                       total_documents=100, pair=TagPair("zeta", "alpha"))

    def test_intersection_bound_names_the_pair(self):
        with pytest.raises(ValueError,
                           match=r"either tag count for pair \(a, b\)"):
            PairCounts(count_a=2, count_b=2, count_both=3,
                       total_documents=100, pair=TagPair("a", "b"))

    def test_document_bound_names_the_pair(self):
        with pytest.raises(ValueError,
                           match=r"document count for pair \(a, b\)"):
            PairCounts(count_a=200, count_b=5, count_both=5,
                       total_documents=100, pair=TagPair("a", "b"))

    def test_pairless_counts_omit_the_context(self):
        with pytest.raises(ValueError) as excinfo:
            counts(-1, 5, 0, 100)
        assert "for pair" not in str(excinfo.value)

    def test_pair_annotation_does_not_affect_equality(self):
        annotated = PairCounts(count_a=10, count_b=5, count_both=3,
                               total_documents=100, pair=TagPair("a", "b"))
        assert annotated == counts(10, 5, 3, 100)
