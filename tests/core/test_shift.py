"""Tests for shift detection and scoring."""

import pytest

from repro.core.correlation import PairCounts
from repro.core.shift import ShiftDetector, ShiftScore
from repro.core.tracker import PairObservation
from repro.core.types import TagPair
from repro.timeseries.predictors import LastValuePredictor, MovingAveragePredictor
from repro.windows.decay import ExponentialDecay


def observation(pair, timestamp, correlation, seed="s"):
    return PairObservation(
        pair=pair,
        timestamp=timestamp,
        correlation=correlation,
        counts=PairCounts(1, 1, 1, 10),
        seed_tag=seed,
    )


class TestPredictionError:
    def test_short_history_gives_zero_error(self):
        detector = ShiftDetector(min_history=3)
        assert detector.prediction_error([0.1], 0.9) == 0.0
        assert detector.predict([0.1]) == 0.0

    def test_error_is_observation_minus_prediction(self):
        detector = ShiftDetector(predictor=MovingAveragePredictor(window=3), min_history=3)
        error = detector.prediction_error([0.1, 0.1, 0.1], 0.5)
        assert error == pytest.approx(0.4)

    def test_negative_errors_clamped_by_default(self):
        detector = ShiftDetector(predictor=LastValuePredictor(), min_history=1)
        assert detector.prediction_error([0.8], 0.2) == 0.0

    def test_drops_penalised_when_requested(self):
        detector = ShiftDetector(predictor=LastValuePredictor(), min_history=1,
                                 penalize_drops=True)
        assert detector.prediction_error([0.8], 0.2) == pytest.approx(0.6)

    def test_predictable_series_has_no_error(self):
        detector = ShiftDetector(predictor=MovingAveragePredictor(window=5), min_history=3)
        assert detector.prediction_error([0.3, 0.3, 0.3, 0.3], 0.3) == pytest.approx(0.0)

    def test_min_history_validation(self):
        with pytest.raises(ValueError):
            ShiftDetector(min_history=0)


class TestUpdateAndScores:
    def test_update_returns_shift_score(self):
        detector = ShiftDetector(predictor=MovingAveragePredictor(window=3), min_history=3)
        pair = TagPair("a", "b")
        shift = detector.update(observation(pair, 10.0, 0.9), [0.1, 0.1, 0.1])
        assert isinstance(shift, ShiftScore)
        assert shift.error == pytest.approx(0.8)
        assert shift.score == pytest.approx(0.8)
        assert shift.predicted == pytest.approx(0.1)

    def test_score_is_decayed_maximum_of_errors(self):
        decay = ExponentialDecay(half_life=100.0)
        detector = ShiftDetector(predictor=LastValuePredictor(), min_history=1, decay=decay)
        pair = TagPair("a", "b")
        detector.update(observation(pair, 0.0, 0.9), [0.1])       # error 0.8
        second = detector.update(observation(pair, 100.0, 0.3), [0.9])  # error 0
        # After one half-life the old error has decayed to 0.4 and still wins.
        assert second.score == pytest.approx(0.4)

    def test_fresh_large_error_beats_decayed_old_one(self):
        decay = ExponentialDecay(half_life=100.0)
        detector = ShiftDetector(predictor=LastValuePredictor(), min_history=1, decay=decay)
        pair = TagPair("a", "b")
        detector.update(observation(pair, 0.0, 0.5), [0.1])       # error 0.4
        second = detector.update(observation(pair, 200.0, 0.95), [0.2])  # error 0.75
        assert second.score == pytest.approx(0.75)

    def test_score_at_for_unknown_pair_is_zero(self):
        assert ShiftDetector().score_at(TagPair("a", "b"), 10.0) == 0.0

    def test_score_at_decays_between_updates(self):
        decay = ExponentialDecay(half_life=100.0)
        detector = ShiftDetector(predictor=LastValuePredictor(), min_history=1, decay=decay)
        pair = TagPair("a", "b")
        detector.update(observation(pair, 0.0, 1.0), [0.0])  # error 1.0
        assert detector.score_at(pair, 100.0) == pytest.approx(0.5)

    def test_scored_pairs_and_reset(self):
        detector = ShiftDetector(predictor=LastValuePredictor(), min_history=1)
        pair_ab, pair_cd = TagPair("a", "b"), TagPair("c", "d")
        detector.update(observation(pair_ab, 0.0, 1.0), [0.0])
        detector.update(observation(pair_cd, 0.0, 1.0), [0.0])
        assert detector.scored_pairs() == [pair_ab, pair_cd]
        detector.reset(pair_ab)
        assert detector.scored_pairs() == [pair_cd]
        detector.reset()
        assert detector.scored_pairs() == []

    def test_shift_score_validation(self):
        with pytest.raises(ValueError):
            ShiftScore(pair=TagPair("a", "b"), timestamp=0.0, correlation=0.1,
                       predicted=0.1, error=-0.1, score=0.0, seed_tag="a")
