"""Tests for the pipeline configuration."""

import pytest

from repro.core.config import (
    DAY,
    HOUR,
    EnBlogueConfig,
    live_stream_config,
    news_archive_config,
)
from repro.windows.decay import TWO_DAYS_SECONDS


class TestEnBlogueConfig:
    def test_defaults_match_the_paper(self):
        config = EnBlogueConfig()
        # Seeds are popular tags; decline half-life is roughly two days.
        assert config.seed_criterion == "popularity"
        assert config.decay_half_life == TWO_DAYS_SECONDS
        assert config.top_k == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            EnBlogueConfig(window_horizon=0.0)
        with pytest.raises(ValueError):
            EnBlogueConfig(evaluation_interval=0.0)
        with pytest.raises(ValueError):
            EnBlogueConfig(window_horizon=HOUR, evaluation_interval=DAY)
        with pytest.raises(ValueError):
            EnBlogueConfig(num_seeds=0)
        with pytest.raises(ValueError):
            EnBlogueConfig(min_pair_support=0)
        with pytest.raises(ValueError):
            EnBlogueConfig(history_length=1)
        with pytest.raises(ValueError):
            EnBlogueConfig(decay_half_life=0.0)
        with pytest.raises(ValueError):
            EnBlogueConfig(top_k=0)
        with pytest.raises(ValueError):
            EnBlogueConfig(seed_criterion="magic")
        with pytest.raises(ValueError):
            EnBlogueConfig(min_seed_count=0)
        with pytest.raises(ValueError):
            EnBlogueConfig(min_history=0)
        with pytest.raises(ValueError):
            EnBlogueConfig(predictor_window=0)

    def test_with_overrides_returns_new_config(self):
        config = EnBlogueConfig()
        other = config.with_overrides(top_k=5, name="variant")
        assert other.top_k == 5
        assert other.name == "variant"
        assert config.top_k == 10

    def test_with_overrides_still_validates(self):
        with pytest.raises(ValueError):
            EnBlogueConfig().with_overrides(top_k=0)

    def test_describe_is_flat(self):
        described = EnBlogueConfig(name="x").describe()
        assert described["name"] == "x"
        assert described["correlation_measure"] == "jaccard"

    def test_config_is_hashable_and_frozen(self):
        config = EnBlogueConfig()
        with pytest.raises(AttributeError):
            config.top_k = 3
        assert hash(config) == hash(EnBlogueConfig())


class TestPresets:
    def test_news_archive_preset(self):
        config = news_archive_config()
        assert config.evaluation_interval == DAY
        assert config.window_horizon == 7 * DAY

    def test_live_stream_preset(self):
        config = live_stream_config()
        assert config.evaluation_interval == HOUR
        assert config.window_horizon == 2 * DAY
