"""Tests for the top-k ranking builder."""

import pytest

from repro.core.ranking import RankingBuilder
from repro.core.shift import ShiftDetector, ShiftScore
from repro.core.tracker import PairObservation
from repro.core.correlation import PairCounts
from repro.core.types import TagPair
from repro.timeseries.predictors import LastValuePredictor
from repro.windows.decay import ExponentialDecay


def shift(pair, score, timestamp=0.0, error=None, correlation=0.5):
    return ShiftScore(
        pair=pair, timestamp=timestamp, correlation=correlation,
        predicted=0.1, error=error if error is not None else score,
        score=score, seed_tag=pair.first,
    )


class TestRankingBuilder:
    def test_builds_sorted_topk(self):
        builder = RankingBuilder(top_k=2)
        scores = [
            shift(TagPair("a", "b"), 0.2),
            shift(TagPair("c", "d"), 0.9),
            shift(TagPair("e", "f"), 0.5),
        ]
        ranking = builder.build(10.0, scores)
        assert len(ranking) == 2
        assert ranking[0].pair == TagPair("c", "d")
        assert ranking[1].pair == TagPair("e", "f")

    def test_min_score_filters_noise(self):
        builder = RankingBuilder(top_k=5, min_score=0.3)
        ranking = builder.build(1.0, [shift(TagPair("a", "b"), 0.1)])
        assert len(ranking) == 0

    def test_zero_score_topics_excluded_by_default(self):
        builder = RankingBuilder(top_k=5)
        ranking = builder.build(1.0, [shift(TagPair("a", "b"), 0.0)])
        assert len(ranking) == 0

    def test_label_attached(self):
        builder = RankingBuilder(top_k=5)
        ranking = builder.build(1.0, [shift(TagPair("a", "b"), 0.5)], label="config-x")
        assert ranking.label == "config-x"

    def test_validation(self):
        with pytest.raises(ValueError):
            RankingBuilder(top_k=0)
        with pytest.raises(ValueError):
            RankingBuilder(min_score=-1.0)

    def test_past_scored_pairs_compete_via_detector(self):
        # A pair scored strongly an hour ago but absent from the current
        # observations must still appear with its decayed score.
        decay = ExponentialDecay(half_life=7200.0)
        detector = ShiftDetector(predictor=LastValuePredictor(), min_history=1, decay=decay)
        old_pair = TagPair("old", "topic")
        detector.update(
            PairObservation(pair=old_pair, timestamp=0.0, correlation=0.9,
                            counts=PairCounts(2, 2, 2, 10), seed_tag="old"),
            [0.0],
        )
        builder = RankingBuilder(top_k=5)
        fresh = [shift(TagPair("new", "topic"), 0.1, timestamp=3600.0)]
        ranking = builder.build(3600.0, fresh, detector=detector)
        assert ranking.contains_pair(old_pair)
        assert ranking[0].pair == old_pair  # 0.9 decayed by half a half-life > 0.1

    def test_current_observation_takes_precedence_over_detector_entry(self):
        detector = ShiftDetector(predictor=LastValuePredictor(), min_history=1)
        pair = TagPair("a", "b")
        detector.update(
            PairObservation(pair=pair, timestamp=0.0, correlation=0.9,
                            counts=PairCounts(2, 2, 2, 10), seed_tag="a"),
            [0.0],
        )
        builder = RankingBuilder(top_k=5)
        ranking = builder.build(0.0, [shift(pair, 0.9, correlation=0.77)], detector=detector)
        # Only one entry for the pair, carrying the fresh correlation value.
        assert len([t for t in ranking if t.pair == pair]) == 1
        assert ranking[0].correlation == pytest.approx(0.77)
