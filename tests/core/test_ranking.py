"""Tests for the top-k ranking builder."""

import pytest

from repro.core.ranking import RankingBuilder, topic_sort_key
from repro.core.shift import ShiftDetector, ShiftScore
from repro.core.tracker import PairObservation
from repro.core.correlation import PairCounts
from repro.core.types import TagPair
from repro.timeseries.predictors import LastValuePredictor
from repro.windows.decay import ExponentialDecay


def shift(pair, score, timestamp=0.0, error=None, correlation=0.5):
    return ShiftScore(
        pair=pair, timestamp=timestamp, correlation=correlation,
        predicted=0.1, error=error if error is not None else score,
        score=score, seed_tag=pair.first,
    )


class TestRankingBuilder:
    def test_builds_sorted_topk(self):
        builder = RankingBuilder(top_k=2)
        scores = [
            shift(TagPair("a", "b"), 0.2),
            shift(TagPair("c", "d"), 0.9),
            shift(TagPair("e", "f"), 0.5),
        ]
        ranking = builder.build(10.0, scores)
        assert len(ranking) == 2
        assert ranking[0].pair == TagPair("c", "d")
        assert ranking[1].pair == TagPair("e", "f")

    def test_min_score_filters_noise(self):
        builder = RankingBuilder(top_k=5, min_score=0.3)
        ranking = builder.build(1.0, [shift(TagPair("a", "b"), 0.1)])
        assert len(ranking) == 0

    def test_zero_score_topics_excluded_by_default(self):
        builder = RankingBuilder(top_k=5)
        ranking = builder.build(1.0, [shift(TagPair("a", "b"), 0.0)])
        assert len(ranking) == 0

    def test_label_attached(self):
        builder = RankingBuilder(top_k=5)
        ranking = builder.build(1.0, [shift(TagPair("a", "b"), 0.5)], label="config-x")
        assert ranking.label == "config-x"

    def test_validation(self):
        with pytest.raises(ValueError):
            RankingBuilder(top_k=0)
        with pytest.raises(ValueError):
            RankingBuilder(min_score=-1.0)

    def test_past_scored_pairs_compete_via_detector(self):
        # A pair scored strongly an hour ago but absent from the current
        # observations must still appear with its decayed score.
        decay = ExponentialDecay(half_life=7200.0)
        detector = ShiftDetector(predictor=LastValuePredictor(), min_history=1, decay=decay)
        old_pair = TagPair("old", "topic")
        detector.update(
            PairObservation(pair=old_pair, timestamp=0.0, correlation=0.9,
                            counts=PairCounts(2, 2, 2, 10), seed_tag="old"),
            [0.0],
        )
        builder = RankingBuilder(top_k=5)
        fresh = [shift(TagPair("new", "topic"), 0.1, timestamp=3600.0)]
        ranking = builder.build(3600.0, fresh, detector=detector)
        assert ranking.contains_pair(old_pair)
        assert ranking[0].pair == old_pair  # 0.9 decayed by half a half-life > 0.1

    def test_current_observation_takes_precedence_over_detector_entry(self):
        detector = ShiftDetector(predictor=LastValuePredictor(), min_history=1)
        pair = TagPair("a", "b")
        detector.update(
            PairObservation(pair=pair, timestamp=0.0, correlation=0.9,
                            counts=PairCounts(2, 2, 2, 10), seed_tag="a"),
            [0.0],
        )
        builder = RankingBuilder(top_k=5)
        ranking = builder.build(0.0, [shift(pair, 0.9, correlation=0.77)], detector=detector)
        # Only one entry for the pair, carrying the fresh correlation value.
        assert len([t for t in ranking if t.pair == pair]) == 1
        assert ranking[0].correlation == pytest.approx(0.77)


class TestDeterministicTieBreaking:
    """The documented total order: score descending, canonical pair ascending."""

    def test_equal_scores_break_by_canonical_pair(self):
        builder = RankingBuilder(top_k=5)
        scores = [
            shift(TagPair("zeta", "omega"), 0.5),
            shift(TagPair("alpha", "beta"), 0.5),
            shift(TagPair("beta", "gamma"), 0.5),
        ]
        ranking = builder.build(1.0, scores)
        assert ranking.pairs() == [
            TagPair("alpha", "beta"),
            TagPair("beta", "gamma"),
            TagPair("omega", "zeta"),
        ]

    def test_order_is_independent_of_input_order(self):
        builder = RankingBuilder(top_k=10)
        scores = [
            shift(TagPair("c", "d"), 0.5),
            shift(TagPair("a", "b"), 0.5),
            shift(TagPair("e", "f"), 0.9),
            shift(TagPair("g", "h"), 0.5),
        ]
        forward = builder.build(1.0, scores)
        backward = builder.build(1.0, list(reversed(scores)))
        assert forward.topics == backward.topics

    def test_topic_sort_key_is_total_over_distinct_pairs(self):
        builder = RankingBuilder(top_k=10)
        ranking = builder.build(1.0, [
            shift(TagPair("a", "b"), 0.5),
            shift(TagPair("a", "c"), 0.5),
        ])
        keys = [topic_sort_key(topic) for topic in ranking]
        assert keys == sorted(keys)
        assert len(set(keys)) == len(keys)


class TestKWayMerge:
    """Cross-shard merge: identical to ranking the union in one builder."""

    def test_merge_of_disjoint_sorted_lists_equals_union_build(self):
        builder = RankingBuilder(top_k=3)
        all_scores = [
            shift(TagPair("a", "b"), 0.7),
            shift(TagPair("c", "d"), 0.9),
            shift(TagPair("e", "f"), 0.5),
            shift(TagPair("g", "h"), 0.5),
            shift(TagPair("i", "j"), 0.1),
        ]
        union = builder.build(5.0, all_scores, label="union")
        # Partition the scores over two "shards" and merge their local top-k.
        local_a = builder.top_topics(5.0, all_scores[0::2])
        local_b = builder.top_topics(5.0, all_scores[1::2])
        merged = builder.merge(5.0, [local_a, local_b], label="union")
        assert merged.topics == union.topics
        assert merged.timestamp == union.timestamp
        assert merged.label == "union"

    def test_merge_truncates_to_top_k(self):
        builder = RankingBuilder(top_k=2)
        local = builder.top_topics(1.0, [
            shift(TagPair("a", "b"), 0.9),
            shift(TagPair("c", "d"), 0.8),
        ])
        other = builder.top_topics(1.0, [shift(TagPair("e", "f"), 0.85)])
        merged = builder.merge(1.0, [local, other])
        assert [topic.score for topic in merged] == [0.9, 0.85]

    def test_merge_of_no_shards_is_empty(self):
        builder = RankingBuilder(top_k=2)
        assert len(builder.merge(1.0, [])) == 0
