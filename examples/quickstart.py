#!/usr/bin/env python
"""Quickstart: detect emergent topics in a synthetic tweet stream.

The script generates a three-day synthetic Twitter-style stream (including
the "SIGMOD + Athens" topic the demo's audience injects), feeds it to the
EnBlogue engine and prints the evolving emergent-topic ranking, the
correlation history of the injected topic, and where it ended up being
ranked.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import EnBlogue, EnBlogueConfig, TagPair
from repro.datasets import TweetStreamGenerator

HOUR = 3600.0
DAY = 86400.0


def main() -> None:
    # 1. A three-day stream of hashtag-annotated posts with scripted events.
    corpus, events = TweetStreamGenerator(hours=72, tweets_per_hour=40).generate()
    print(f"generated {len(corpus)} posts over 72 hours; "
          f"ground-truth events: {[e.name for e in events]}")

    # 2. Configure the three-stage pipeline: a one-day sliding window,
    #    hourly re-evaluation, popular tags as seeds, Jaccard correlation,
    #    moving-average prediction and the paper's two-day decay half-life.
    config = EnBlogueConfig(
        window_horizon=DAY,
        evaluation_interval=HOUR,
        seed_criterion="popularity",
        correlation_measure="jaccard",
        predictor="moving_average",
        decay_half_life=2 * DAY,
        top_k=10,
        name="quickstart",
    )
    engine = EnBlogue(config)

    # 3. Stream the documents through the engine.  A new ranking is produced
    #    every time stream time crosses an evaluation boundary; print a
    #    snapshot twice a simulated day.
    produced = 0
    for document in corpus:
        ranking = engine.process(document)
        if ranking is not None:
            produced += 1
            if produced % 12 == 0:
                print()
                print(ranking.describe(k=5))

    # 4. The final ranking and the story of the injected SIGMOD/Athens topic.
    final = engine.evaluate_now()
    print("\n=== final ranking ===")
    print(final.describe(k=10))

    sigmod = TagPair("sigmod", "athens")
    history = engine.correlation_history("sigmod", "athens")
    print(f"\ncorrelation history of {sigmod}: "
          f"{[round(v, 3) for v in history.values[-12:]]} (last 12 evaluations)")
    print(f"current shift score of {sigmod}: "
          f"{engine.topic_score('sigmod', 'athens'):.4f}")
    position = final.position_of(sigmod)
    if position is not None:
        print(f"{sigmod} is ranked #{position + 1} in the final top-10")
    else:
        print(f"{sigmod} is not in the final top-10 (its shift has decayed)")


if __name__ == "__main__":
    main()
