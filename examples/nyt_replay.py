#!/usr/bin/env python
"""Show case 1: revisiting historic events on a NYT-style archive.

Replays a synthetic New York Times-style archive (categories and
descriptors as tags, scripted historic events: elections, hurricanes, sport
events, a bank collapse and the Eyjafjallajokull eruption), then

* prints when each scripted event was detected and at which rank,
* slices the final ranking by pre-selected category, the way the demo lets
  users browse, and
* re-runs the ranking over a user-chosen time range to show how the result
  changes with the period of interest.

Run with:  python examples/nyt_replay.py
"""

from __future__ import annotations

from repro import EnBlogue, TagPair, news_archive_config
from repro.datasets import NytArchiveGenerator
from repro.datasets.nyt import DAY, nyt_vocabulary
from repro.evaluation import GroundTruthMatcher, format_table
from repro.evaluation.harness import run_detector


def main() -> None:
    # 1. Generate the archive (half a compressed "year" keeps the replay quick).
    generator = NytArchiveGenerator(years=0.5, articles_per_day=16)
    corpus, schedule = generator.generate()
    start, end = corpus.time_range()
    print(f"archive: {len(corpus)} articles over {int((end - start) / DAY)} days, "
          f"{len(schedule)} scripted historic events")

    # 2. Replay it through enBlogue with the daily-granularity preset.
    engine = EnBlogue(news_archive_config())
    run = run_detector(engine, corpus, name="enblogue")
    print(f"replayed at {run.throughput:.0f} docs/s, "
          f"{len(run.rankings)} daily rankings produced")

    # 3. Detection report against the scripted events.
    matcher = GroundTruthMatcher(schedule, k=10)
    rows = []
    for outcome in matcher.outcomes(run.rankings):
        rows.append({
            "event": outcome.event.name,
            "category": outcome.event.category,
            "pair": str(TagPair.from_tuple(outcome.event.pair)),
            "onset (day)": round(outcome.event.start / DAY, 1),
            "detected": "yes" if outcome.detected else "no",
            "latency (days)": (round(outcome.latency / DAY, 1)
                               if outcome.latency is not None else "-"),
            "best rank": outcome.best_rank if outcome.best_rank is not None else "-",
        })
    print()
    print(format_table(rows, title="Detection of the scripted historic events"))

    # 4. Category view: what a user browsing "hurricanes" would see.
    vocabulary = nyt_vocabulary()
    final = run.final_ranking()
    print()
    print(final.describe(k=10))
    for category in ("us elections", "hurricanes", "sports"):
        tags = set(vocabulary.tags(category))
        matching = [t for t in final if set(t.pair.as_tuple()) & tags]
        names = ", ".join(str(t.pair) for t in matching[:3]) or "(none)"
        print(f"  {category:>14}: {names}")

    # 5. Time-range view: re-rank only the middle quarter of the archive.
    window_start = start + (end - start) * 0.4
    window_end = start + (end - start) * 0.65
    scoped = EnBlogue(news_archive_config(name="user-range"))
    scoped.process_many(corpus.between(window_start, window_end))
    print(f"\nranking restricted to days "
          f"{int(window_start / DAY)}..{int(window_end / DAY)}:")
    print(scoped.evaluate_now().describe(k=5))


if __name__ == "__main__":
    main()
