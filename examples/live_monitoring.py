#!/usr/bin/env python
"""Show case 2: live monitoring of merged Twitter + RSS streams with push updates.

Builds the full demo architecture in process:

  twitter source ─┐
  rss feed 1     ─┼─ merged, time-ordered ─ tag normalizer ─ entity tagging ─ enBlogue
  rss feed 2     ─┘                                                              │
                                                     portal (APE-style push) ◄───┘
                                                         │
                                     connected browser sessions (no polling)

and replays three days of synthetic live data, showing how the ranking
evolves and how the audience-injected "SIGMOD + Athens" topic climbs into
the top positions while connected sessions receive every update by push.

Run with:  python examples/live_monitoring.py
"""

from __future__ import annotations

from repro import EnBlogue, Portal, TagPair, live_stream_config
from repro.datasets import RssFeedGenerator, TweetStreamGenerator
from repro.entity import EntityTaggingOperator
from repro.streams import (
    DocumentStreamSource,
    MergedSource,
    QueryPlan,
    PlanExecutor,
    StatisticsOperator,
    TagNormalizerOperator,
)

HOUR = 3600.0


def main() -> None:
    # 1. Data sources: one tweet stream plus the default RSS feed line-up.
    tweets, events = TweetStreamGenerator(hours=72, tweets_per_hour=40).generate()
    feeds = RssFeedGenerator(hours=72, posts_per_hour=5).generate_all()
    sources = [DocumentStreamSource(tweets, source_name="twitter")]
    for name, corpus in feeds.items():
        sources.append(DocumentStreamSource(corpus, source_name=name))
    merged = MergedSource(sources, name="live-feeds")
    print(f"sources: twitter ({len(tweets)} posts) + "
          f"{len(feeds)} RSS feeds ({sum(len(c) for c in feeds.values())} posts)")

    # 2. The operator DAG: shared normalizer / statistics / entity tagging in
    #    front of the detection engine, exactly as in Section 4.1.
    engine = EnBlogue(live_stream_config())
    executor = PlanExecutor()
    plan = QueryPlan(
        "live-monitoring",
        merged,
        [
            executor.shared_operator("normalize", TagNormalizerOperator),
            executor.shared_operator("statistics", StatisticsOperator),
            executor.shared_operator("entities", EntityTaggingOperator),
        ],
        engine.as_sink(),
    )
    executor.register(plan)
    print(executor.describe())

    # 3. The portal: two browser sessions subscribe and receive pushed updates.
    portal = Portal(engine)
    laptop = portal.connect("laptop-browser")
    phone = portal.connect("smartphone")

    # 4. Replay the live data.
    executor.run()
    engine.evaluate_now()

    # 5. What the connected clients saw.
    print(f"\nportal status: {portal.status()}")
    print(f"laptop session received {len(laptop.messages())} ranking updates; "
          f"latest view:")
    print(portal.current_view("laptop-browser").describe(k=5))

    sigmod = TagPair("sigmod", "athens")
    trajectory = [
        (round(r.timestamp / HOUR), r.position_of(sigmod))
        for r in engine.ranking_history()
        if r.position_of(sigmod) is not None
    ]
    if trajectory:
        first_hour, first_rank = trajectory[0]
        best_rank = min(rank for _, rank in trajectory)
        print(f"\nthe injected {sigmod} topic entered the ranking at hour "
              f"{first_hour} (rank {first_rank + 1}) and peaked at rank {best_rank + 1}")
    else:
        print(f"\nthe injected {sigmod} topic never entered the top-10")

    # The phone session got exactly the same pushes - "we in particular also
    # support (mobile) smartphone users receiving continuous updates".
    assert len(phone.messages()) == len(laptop.messages())


if __name__ == "__main__":
    main()
