#!/usr/bin/env python
"""Show case 3: personalization — different users, different emergent topics.

Registers three user profiles (a database researcher with continuous
keyword queries, a traveller, and a sports-only user who filters rather
than boosts), replays the live stream once, and prints the global ranking
next to each user's personalized view, quantifying how much they differ.
Finally it changes one user's preferences mid-session, as the demo allows,
and shows the immediate effect.

Run with:  python examples/personalized_alerts.py
"""

from __future__ import annotations

from repro import EnBlogue, UserProfile, live_stream_config
from repro.datasets import TweetStreamGenerator
from repro.datasets.twitter import twitter_vocabulary
from repro.evaluation import RankingComparison, format_table


def main() -> None:
    corpus, _ = TweetStreamGenerator(hours=72, tweets_per_hour=40).generate()
    engine = EnBlogue(live_stream_config(name="personalized").with_overrides(top_k=15))

    vocabulary = twitter_vocabulary()
    profiles = [
        UserProfile(
            user_id="database-researcher",
            keywords=("sigmod", "databases", "datascience", "athens"),
            boost=4.0,
        ),
        UserProfile(
            user_id="traveller",
            keywords=("travel", "iceland", "europe"),
            boost=4.0,
        ),
        UserProfile(
            user_id="sports-only",
            categories=("sports",),
            category_tags={"sports": tuple(vocabulary.tags("sports"))},
            filter_only=True,
        ),
    ]
    for profile in profiles:
        engine.register_user(profile)

    engine.process_many(corpus)
    engine.evaluate_now()

    global_ranking = engine.current_ranking()
    print("=== global ranking ===")
    print(global_ranking.describe(k=8))

    rows = []
    for profile in profiles:
        personalized = engine.ranking_for_user(profile.user_id, top_k=8)
        comparison = RankingComparison.compare(global_ranking, personalized, k=8)
        rows.append({
            "user": profile.user_id,
            "interests": ", ".join(profile.keywords or profile.categories),
            "top topic": str(personalized[0].pair) if len(personalized) else "-",
            "topics": len(personalized),
            "overlap vs global": round(comparison.overlap, 2),
            "tau vs global": round(comparison.tau, 2),
        })
        print(f"\n=== {profile.user_id} ===")
        print(personalized.describe(k=8))

    print()
    print(format_table(rows, title="Personalized views compared to the global ranking"))

    # "Users can change their preferences at any time and observe the impact."
    researcher = engine.personalization.profile("database-researcher")
    researcher.update_keywords(["election", "politics", "vote"])
    updated = engine.ranking_for_user("database-researcher", top_k=8)
    print("\nafter the researcher switches interests to election coverage:")
    print(updated.describe(k=5))


if __name__ == "__main__":
    main()
